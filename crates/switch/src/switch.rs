//! The shared-memory switch: admission, PFC, ECN and scheduling.

use std::collections::HashMap;

use dcn_net::{FlowId, NodeId, Packet, PfcFrame, PortId, TrafficClass};
use dcn_sim::{
    BitRate, Bytes, SimDuration, SimRng, SimTime, TraceDropCause, TraceEvent, TraceHandle,
};

use dcn_metrics::{DropCounters, PfcCounters};

use crate::config::SwitchConfig;
use crate::mmu::{MmuState, Pool, QueueIndex};
use crate::policy::BufferPolicy;
use crate::queue::{EgressPort, InFlight, QueuedPacket};

/// Why a packet was rejected at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A lossy packet exceeded its ingress-queue PFC/drop threshold.
    IngressLossy,
    /// A lossy packet exceeded its egress-queue dynamic threshold.
    EgressLossy,
    /// A lossless packet arrived with both shared space and headroom
    /// exhausted — a configuration failure in a healthy network.
    HeadroomExhausted,
}

/// A PFC frame the switch wants transmitted out of `port` (to the
/// upstream device attached there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcEmit {
    /// The ingress port whose upstream neighbour must pause/resume.
    pub port: PortId,
    /// The pause or resume frame.
    pub frame: PfcFrame,
}

/// An instruction to the event loop: `packet` starts serializing out of
/// `port` now and completes after `serialize`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxStart {
    /// The transmitting egress port.
    pub port: PortId,
    /// The packet, moved out of its queue for delivery to the link peer.
    pub packet: Packet,
    /// Serialization time at the port's link rate.
    pub serialize: SimDuration,
}

/// Outcome of [`SharedMemorySwitch::receive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// The packet was admitted and queued.
    Admitted {
        /// Whether the switch set the CE mark on it.
        ecn_marked: bool,
    },
    /// The packet was dropped.
    Dropped(DropReason),
}

/// Full result of processing one arriving packet.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiveResult {
    /// Admitted or dropped.
    pub outcome: ReceiveOutcome,
    /// An XOFF to send upstream, if the arrival crossed the threshold.
    pub pfc: Option<PfcEmit>,
    /// A transmission to start, if the egress port was idle.
    pub tx: Option<TxStart>,
    /// An IRN NACK toward the flow's sender, generated when a lossy-RDMA
    /// data arrival exposed a sequence gap (a drop at some upstream hop).
    /// The event loop injects it into this switch for normal forwarding.
    pub nack: Option<Packet>,
}

impl ReceiveResult {
    /// Whether the packet was admitted.
    pub fn admitted(&self) -> bool {
        matches!(self.outcome, ReceiveOutcome::Admitted { .. })
    }
}

/// Result of completing a transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct TxCompleteResult {
    /// Bookkeeping of the packet that just left the switch (the packet
    /// itself was moved to the peer when serialization started).
    pub departed: InFlight,
    /// The next transmission on this port, if one is eligible.
    pub next: Option<TxStart>,
    /// An XON to send upstream, if the departure cleared the hysteresis.
    pub pfc: Option<PfcEmit>,
}

/// Upper bound on preemptive evictions a single arrival may trigger — a
/// termination backstop for the plan/evict/re-test admission loop (the
/// loop normally ends much earlier, when the arrival fits or the policy
/// stops naming victims).
const MAX_EVICTIONS_PER_ARRIVAL: u32 = 32;

/// An output-queued shared-memory switch with PFC and a pluggable
/// buffer-management policy. See the crate docs for the protocol between
/// the switch and the event loop.
#[derive(Debug)]
pub struct SharedMemorySwitch {
    id: NodeId,
    cfg: SwitchConfig,
    mmu: MmuState,
    ports: Vec<EgressPort>,
    policy: Box<dyn BufferPolicy>,
    /// Ingress queues that have an outstanding XOFF, by flat queue index.
    pause_sent: Vec<bool>,
    /// Per-egress-queue pause-episode counter (bumped on each pause
    /// edge), by flat queue index. The PFC storm watchdog uses it to
    /// recognize stale deadlines: a watchdog armed for episode `g`
    /// only fires if the queue is still paused *and* still in episode
    /// `g`.
    pause_generation: Vec<u64>,
    pfc_counters: PfcCounters,
    drop_counters: DropCounters,
    /// Per-flow next-expected sequence offset of lossy-RDMA (IRN) data
    /// transiting this switch, updated on *every* arrival — admitted or
    /// dropped — so a gap opened by a drop at an upstream hop is
    /// detected here and NACKed toward the sender. Lookup-only (never
    /// iterated), so a hash map cannot perturb determinism.
    irn_expected: HashMap<FlowId, u64>,
    rng: SimRng,
    trace: TraceHandle,
}

impl SharedMemorySwitch {
    /// Creates a switch with one port per entry of `link_rates`.
    ///
    /// `seed` drives only probabilistic ECN marking, keeping runs
    /// reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or `link_rates` is empty.
    pub fn new(
        id: NodeId,
        cfg: SwitchConfig,
        link_rates: Vec<BitRate>,
        policy: Box<dyn BufferPolicy>,
        seed: u64,
    ) -> SharedMemorySwitch {
        cfg.validate().expect("invalid switch config");
        let n = link_rates.len();
        let mmu = MmuState::new(&cfg, link_rates);
        SharedMemorySwitch {
            id,
            cfg,
            mmu,
            ports: (0..n).map(|_| EgressPort::new()).collect(),
            policy,
            pause_sent: vec![false; n * dcn_net::Priority::COUNT],
            pause_generation: vec![0; n * dcn_net::Priority::COUNT],
            pfc_counters: PfcCounters::new(),
            drop_counters: DropCounters::new(),
            irn_expected: HashMap::new(),
            rng: SimRng::seed_from_u64(seed ^ (id.index() as u64).wrapping_mul(0xA5A5_5A5A)),
            trace: TraceHandle::disabled(),
        }
    }

    /// Attaches a flight recorder. The default handle is disabled, in
    /// which case every record site is a single untaken branch.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// This switch's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The MMU counter state (read-only).
    pub fn mmu(&self) -> &MmuState {
        &self.mmu
    }

    /// Sets the headroom cap of one port's queues (see
    /// [`MmuState::set_headroom_cap`]).
    pub fn set_port_headroom(&mut self, port: PortId, cap: Bytes) {
        self.mmu.set_headroom_cap(port, cap);
    }

    /// The active buffer-management policy.
    pub fn policy(&self) -> &dyn BufferPolicy {
        self.policy.as_ref()
    }

    /// Total bytes currently stored (the paper's "buffer occupancy").
    pub fn occupancy(&self) -> Bytes {
        self.mmu.total_stored()
    }

    /// PFC frame counters.
    pub fn pfc_counters(&self) -> &PfcCounters {
        &self.pfc_counters
    }

    /// Drop counters.
    pub fn drop_counters(&self) -> &DropCounters {
        &self.drop_counters
    }

    /// Processes a packet arriving on `in_port`, destined (per routing)
    /// to leave via `out_port`.
    pub fn receive(
        &mut self,
        now: SimTime,
        mut packet: Packet,
        in_port: PortId,
        out_port: PortId,
    ) -> ReceiveResult {
        let q_in = QueueIndex::new(in_port, packet.priority);
        let q_out = QueueIndex::new(out_port, packet.priority);
        let size = packet.size;
        // Copy the identifiers the trace closures need up front, so the
        // closures capture only `Copy` locals and never borrow `self` or
        // the packet (which is mutated and ultimately moved below).
        let t_node = self.id.index() as u32;
        let t_in = in_port.index() as u16;
        let t_out = out_port.index() as u16;
        let t_prio = packet.priority.index() as u8;
        let t_flow = packet.flow.as_u64();
        let t_seq = packet.seq;
        let t_lossless = packet.class.is_lossless();
        let trace_drop = move |cause: TraceDropCause| TraceEvent::Drop {
            node: t_node,
            in_port: t_in,
            prio: t_prio,
            flow: t_flow,
            seq: t_seq,
            size: size.as_u64(),
            lossless: t_lossless,
            cause,
        };

        // --- IRN gap detection (lossy RDMA only) ------------------------
        // Runs before admission, on every arrival: a drop at an upstream
        // hop shows up here as a sequence jump, and the switch — like an
        // IRN-aware receiver NIC — NACKs the first missing byte toward
        // the sender. The high-water mark then jumps past the gap so one
        // loss episode produces one NACK from this switch.
        let nack = if packet.class.is_lossy_rdma() && packet.is_data() {
            let end = packet.seq + packet.payload.as_u64();
            let expected = self.irn_expected.entry(packet.flow).or_insert(0);
            let gap = packet.seq > *expected;
            let nack_seq = *expected;
            *expected = (*expected).max(end);
            if gap {
                self.trace.record_with(now, || TraceEvent::IrnNack {
                    flow: t_flow,
                    nack_seq,
                    node: t_node,
                    from_switch: true,
                });
                Some(Packet::nack(
                    packet.flow,
                    packet.dst,
                    packet.src,
                    packet.priority,
                    nack_seq,
                    0,
                ))
            } else {
                None
            }
        } else {
            None
        };

        // --- admission ------------------------------------------------
        // A preemptive policy (Occamy) may evict already-queued lossy
        // packets to admit an arrival the thresholds would reject; every
        // non-preemptive policy returns `None` from `plan_eviction`, so
        // this loop runs exactly once for them and the rejection path is
        // byte-identical to the pre-hook switch (zero extra events, zero
        // extra RNG draws).
        let mut evictions = 0u32;
        let charge = loop {
            let threshold = self.policy.pfc_threshold(&self.mmu, q_in, now);
            let plan = self.mmu.plan_charge(q_in, size, Pool::Shared);
            let fits_shared = plan.pooled == Bytes::ZERO
                || (self.mmu.ingress_shared(q_in) + plan.pooled <= threshold
                    && plan.pooled <= self.mmu.shared_remaining());

            let rejection = match packet.class {
                TrafficClass::Lossless => {
                    if fits_shared {
                        break plan;
                    } else if plan.pooled <= self.mmu.headroom_available(q_in) {
                        break self.mmu.plan_charge(q_in, size, Pool::Headroom);
                    } else {
                        DropReason::HeadroomExhausted
                    }
                }
                TrafficClass::Lossy | TrafficClass::LossyRdma => {
                    if !fits_shared {
                        DropReason::IngressLossy
                    } else {
                        let t_egress = self
                            .mmu
                            .shared_remaining()
                            .scale(self.cfg.egress_alpha_lossy);
                        if self.mmu.egress_bytes(q_out) + size > t_egress {
                            DropReason::EgressLossy
                        } else {
                            break plan;
                        }
                    }
                }
            };

            // Rejected: let a preemptive policy make room, then re-test.
            if evictions >= MAX_EVICTIONS_PER_ARRIVAL || !self.try_evict(now, q_in, q_out, size) {
                let cause = match rejection {
                    DropReason::HeadroomExhausted => {
                        self.drop_counters.record_lossless(size);
                        TraceDropCause::HeadroomExhausted
                    }
                    DropReason::IngressLossy => {
                        self.record_droppable(packet.class, size);
                        TraceDropCause::AdmissionDeniedIngress
                    }
                    DropReason::EgressLossy => {
                        self.record_droppable(packet.class, size);
                        TraceDropCause::AdmissionDeniedEgress
                    }
                };
                self.trace.record_with(now, || trace_drop(cause));
                return ReceiveResult {
                    outcome: ReceiveOutcome::Dropped(rejection),
                    pfc: None,
                    tx: None,
                    nack,
                };
            }
            evictions += 1;
        };

        // --- commit -----------------------------------------------------
        self.mmu.charge(q_in, q_out, charge);

        // ECN marking on the egress queue depth after enqueue.
        let ecn_marked = if packet.is_data() {
            let ecn = match packet.class {
                // Lossy RDMA shares the RDMA queues and their shallow
                // marking curve even though it is droppable.
                TrafficClass::Lossless | TrafficClass::LossyRdma => &self.cfg.ecn_lossless,
                TrafficClass::Lossy => &self.cfg.ecn_lossy,
            };
            let p = ecn.mark_probability(self.mmu.egress_bytes(q_out));
            p > 0.0 && self.rng.uniform_f64() < p && packet.mark_ce()
        } else {
            false
        };
        if ecn_marked {
            let depth = self.mmu.egress_bytes(q_out).as_u64();
            self.trace.record_with(now, || TraceEvent::EcnMark {
                node: t_node,
                port: t_out,
                prio: t_prio,
                flow: t_flow,
                seq: t_seq,
                queue_depth: depth,
            });
        }

        self.policy.on_enqueue(&self.mmu, now, q_in, q_out, size);

        // --- PFC XOFF check (lossless only) ----------------------------
        let mut pfc = None;
        if packet.class.is_lossless() && !self.pause_sent[q_in.flat()] {
            let t_now = self.policy.pfc_threshold(&self.mmu, q_in, now);
            let over = charge.pool == Pool::Headroom || self.mmu.ingress_shared(q_in) >= t_now;
            if over {
                self.pause_sent[q_in.flat()] = true;
                self.pfc_counters.record_pause(packet.priority);
                self.trace.record_with(now, || TraceEvent::PfcPause {
                    node: t_node,
                    port: t_in,
                    prio: t_prio,
                });
                pfc = Some(PfcEmit {
                    port: in_port,
                    frame: PfcFrame::pause(packet.priority),
                });
            }
        }

        // --- enqueue & maybe start transmitting -------------------------
        self.trace.record_with(now, || TraceEvent::Enqueue {
            node: t_node,
            in_port: t_in,
            out_port: t_out,
            prio: t_prio,
            flow: t_flow,
            seq: t_seq,
            size: size.as_u64(),
        });
        self.ports[out_port.index()].enqueue(QueuedPacket {
            packet,
            in_port,
            charge,
        });
        let tx = self.try_start(out_port);

        ReceiveResult {
            outcome: ReceiveOutcome::Admitted { ecn_marked },
            pfc,
            tx,
            nack,
        }
    }

    /// Records a drop of a droppable-class packet, splitting lossy-RDMA
    /// drops out as a refinement of the lossy totals.
    fn record_droppable(&mut self, class: TrafficClass, size: Bytes) {
        if class.is_lossy_rdma() {
            self.drop_counters.record_lossy_rdma(size);
        } else {
            self.drop_counters.record_lossy(size);
        }
    }

    /// Attempts one policy-planned preemptive eviction to make room for
    /// a rejected arrival (`q_in`/`q_out`/`size`): asks the policy for a
    /// victim egress queue, pops that queue's *newest* packet, reverses
    /// its MMU charge and records an `Evicted` drop. Returns whether a
    /// packet was actually evicted.
    ///
    /// Only lossy packets may be evicted; a victim whose tail is
    /// lossless is restored untouched and the attempt aborts. Because
    /// `pause_sent` is only ever set by lossless arrivals, an evicted
    /// (lossy) packet's ingress queue never holds an outstanding XOFF,
    /// so eviction never needs to emit XON.
    fn try_evict(
        &mut self,
        now: SimTime,
        q_in: QueueIndex,
        q_out: QueueIndex,
        size: Bytes,
    ) -> bool {
        let Some(victim) = self.policy.plan_eviction(&self.mmu, now, q_in, q_out, size) else {
            return false;
        };
        let Some(qp) = self.ports[victim.port.index()].pop_back(victim.priority) else {
            // The victim queue's remaining MMU bytes belong to a packet
            // already serializing, which cannot be recalled.
            return false;
        };
        if qp.packet.class.is_lossless() {
            self.ports[victim.port.index()].enqueue(qp);
            return false;
        }
        let v_in = QueueIndex::new(qp.in_port, qp.packet.priority);
        let v_size = qp.packet.size;
        self.mmu.discharge(now, v_in, victim, qp.charge);
        self.policy.on_dequeue(&self.mmu, now, v_in, victim, v_size);
        self.drop_counters.record_evicted(v_size);
        if qp.packet.class.is_lossy_rdma() {
            // Refine the eviction (already a lossy drop) by class too.
            self.drop_counters.lossy_rdma_packets += 1;
            self.drop_counters.lossy_rdma_bytes += v_size.as_u64();
        }
        let t_node = self.id.index() as u32;
        let t_in = qp.in_port.index() as u16;
        let t_prio = qp.packet.priority.index() as u8;
        let t_flow = qp.packet.flow.as_u64();
        let t_seq = qp.packet.seq;
        self.trace.record_with(now, || TraceEvent::Drop {
            node: t_node,
            in_port: t_in,
            prio: t_prio,
            flow: t_flow,
            seq: t_seq,
            size: v_size.as_u64(),
            lossless: false,
            cause: TraceDropCause::Evicted,
        });
        true
    }

    /// Completes the in-flight transmission on `port`: discharges the
    /// MMU, may emit XON, and starts the next eligible packet.
    ///
    /// # Panics
    ///
    /// Panics if `port` has nothing in flight.
    pub fn tx_complete(&mut self, now: SimTime, port: PortId) -> TxCompleteResult {
        let qp = self.ports[port.index()].finish_tx();
        let q_in = QueueIndex::new(qp.in_port, qp.priority);
        let q_out = QueueIndex::new(port, qp.priority);
        self.mmu.discharge(now, q_in, q_out, qp.charge);
        self.policy.on_dequeue(&self.mmu, now, q_in, q_out, qp.size);
        let t_node = self.id.index() as u32;
        self.trace.record_with(now, || TraceEvent::Dequeue {
            node: t_node,
            port: port.index() as u16,
            prio: qp.priority.index() as u8,
            flow: qp.flow.as_u64(),
            seq: qp.seq,
            size: qp.size.as_u64(),
        });

        // --- PFC XON check ----------------------------------------------
        let pfc = self.maybe_xon(now, q_in);

        let next = self.try_start(port);
        TxCompleteResult {
            departed: qp,
            next,
            pfc,
        }
    }

    /// Emits an XON for an ingress queue whose XOFF is outstanding, once
    /// its shared occupancy has fallen below the hysteresis point.
    /// Shared by the departure path and the port-down discharge.
    fn maybe_xon(&mut self, now: SimTime, q_in: QueueIndex) -> Option<PfcEmit> {
        if !self.pause_sent[q_in.flat()] {
            return None;
        }
        let t = self.policy.pfc_threshold(&self.mmu, q_in, now);
        // Resume only when the queue's headroom has fully drained —
        // otherwise the next pause episode would start with less
        // than a round trip of absorption and lose lossless packets.
        if self.mmu.ingress_headroom(q_in) != Bytes::ZERO
            || self.mmu.ingress_shared(q_in) > t.scale(self.cfg.xon_fraction)
        {
            return None;
        }
        self.pause_sent[q_in.flat()] = false;
        self.pfc_counters.record_resume(q_in.priority);
        let t_node = self.id.index() as u32;
        self.trace.record_with(now, || TraceEvent::PfcResume {
            node: t_node,
            port: q_in.port.index() as u16,
            prio: q_in.priority.index() as u8,
        });
        Some(PfcEmit {
            port: q_in.port,
            frame: PfcFrame::resume(q_in.priority),
        })
    }

    /// Applies a PFC frame received from the downstream device on
    /// `port` (pausing or resuming one egress priority). A resume may
    /// immediately start a transmission.
    pub fn handle_pfc(&mut self, now: SimTime, port: PortId, frame: PfcFrame) -> Option<TxStart> {
        let q_out = QueueIndex::new(port, frame.priority);
        if self.mmu.set_egress_paused(q_out, frame.pause) {
            if frame.pause {
                // A new pause episode begins; stale watchdog deadlines
                // armed for earlier episodes must not fire into it.
                self.pause_generation[q_out.flat()] += 1;
            }
            self.policy
                .on_egress_pause_changed(&self.mmu, now, q_out, frame.pause);
        }
        if frame.pause {
            None
        } else {
            self.try_start(port)
        }
    }

    /// The current pause episode of an egress queue. Bumped on every
    /// pause edge; pass it back to
    /// [`SharedMemorySwitch::pfc_watchdog_fire`] so the watchdog can
    /// tell a still-stuck pause from a new, unrelated episode.
    pub fn pause_generation(&self, q: QueueIndex) -> u64 {
        self.pause_generation[q.flat()]
    }

    /// Fires the PFC storm watchdog for one egress queue: if the queue
    /// is still paused *and* still in pause episode `generation`, the
    /// pause is force-cleared (as real ASIC pause watchdogs do), a
    /// `PfcWatchdogFired` trace event and counter are recorded, and a
    /// blocked transmission may start. Stale deadlines are no-ops.
    pub fn pfc_watchdog_fire(
        &mut self,
        now: SimTime,
        port: PortId,
        prio: dcn_net::Priority,
        generation: u64,
    ) -> Option<TxStart> {
        let q_out = QueueIndex::new(port, prio);
        if !self.mmu.egress_paused(q_out) || self.pause_generation[q_out.flat()] != generation {
            return None;
        }
        self.mmu.set_egress_paused(q_out, false);
        self.policy
            .on_egress_pause_changed(&self.mmu, now, q_out, false);
        self.pfc_counters.record_watchdog();
        let t_node = self.id.index() as u32;
        self.trace
            .record_with(now, || TraceEvent::PfcWatchdogFired {
                node: t_node,
                port: port.index() as u16,
                prio: prio.index() as u8,
            });
        self.try_start(port)
    }

    /// Discharges every byte queued to `port` (the link behind it went
    /// down), reusing the normal departure bookkeeping so buffer
    /// conservation holds throughout. Drained packets are counted as
    /// drops (cause `link_down`) and freed shared/headroom space may
    /// emit XONs for the ingress queues the drained bytes arrived on.
    /// Any packet already serializing is left to its pending
    /// `tx_complete`; the wire itself drops it at the dead link.
    pub fn port_down(&mut self, now: SimTime, port: PortId) -> Vec<PfcEmit> {
        let drained = self.ports[port.index()].drain_all();
        let t_node = self.id.index() as u32;
        let mut affected: Vec<QueueIndex> = Vec::new();
        for qp in drained {
            let q_in = QueueIndex::new(qp.in_port, qp.packet.priority);
            let q_out = QueueIndex::new(port, qp.packet.priority);
            let size = qp.packet.size;
            self.mmu.discharge(now, q_in, q_out, qp.charge);
            self.policy.on_dequeue(&self.mmu, now, q_in, q_out, size);
            match qp.packet.class {
                TrafficClass::Lossless => self.drop_counters.record_lossless(size),
                class => self.record_droppable(class, size),
            }
            let t_in = qp.in_port.index() as u16;
            let t_prio = qp.packet.priority.index() as u8;
            let t_flow = qp.packet.flow.as_u64();
            let t_seq = qp.packet.seq;
            let t_lossless = qp.packet.class.is_lossless();
            self.trace.record_with(now, || TraceEvent::Drop {
                node: t_node,
                in_port: t_in,
                prio: t_prio,
                flow: t_flow,
                seq: t_seq,
                size: size.as_u64(),
                lossless: t_lossless,
                cause: TraceDropCause::LinkDown,
            });
            if !affected.contains(&q_in) {
                affected.push(q_in);
            }
        }
        affected
            .into_iter()
            .filter_map(|q_in| self.maybe_xon(now, q_in))
            .collect()
    }

    /// Resets PFC state on `port` after its link renegotiates (link
    /// up): any downstream pause asserted across the old link is
    /// cleared, and an outstanding XOFF we sent over it is forgotten —
    /// the peer resets symmetrically, and a still-congested ingress
    /// queue simply re-emits XOFF on its next lossless arrival. May
    /// start a transmission that the stale pause was blocking.
    pub fn reset_port_pfc(&mut self, now: SimTime, port: PortId) -> Option<TxStart> {
        for prio in dcn_net::Priority::all() {
            let q = QueueIndex::new(port, prio);
            if self.mmu.set_egress_paused(q, false) {
                self.policy
                    .on_egress_pause_changed(&self.mmu, now, q, false);
            }
            self.pause_sent[q.flat()] = false;
        }
        self.try_start(port)
    }

    /// Counts a packet the event loop had to discard while forwarding
    /// on this switch's behalf (no live route, dead link) so the drop
    /// reconciles with both [`DropCounters`] and the trace totals.
    pub fn record_forwarding_drop(
        &mut self,
        now: SimTime,
        packet: &Packet,
        in_port: PortId,
        cause: TraceDropCause,
    ) {
        match packet.class {
            TrafficClass::Lossless => self.drop_counters.record_lossless(packet.size),
            class => self.record_droppable(class, packet.size),
        }
        let t_node = self.id.index() as u32;
        let t_in = in_port.index() as u16;
        let t_prio = packet.priority.index() as u8;
        let t_flow = packet.flow.as_u64();
        let t_seq = packet.seq;
        let t_size = packet.size.as_u64();
        let t_lossless = packet.class.is_lossless();
        self.trace.record_with(now, || TraceEvent::Drop {
            node: t_node,
            in_port: t_in,
            prio: t_prio,
            flow: t_flow,
            seq: t_seq,
            size: t_size,
            lossless: t_lossless,
            cause,
        });
    }

    /// Starts the next eligible transmission on `port`, if it is idle.
    fn try_start(&mut self, port: PortId) -> Option<TxStart> {
        let mmu = &self.mmu;
        let eport = &mut self.ports[port.index()];
        let packet = eport.start_next(|prio| mmu.egress_paused(QueueIndex::new(port, prio)))?;
        let serialize = mmu.link_rate(port).tx_time(packet.size);
        Some(TxStart {
            port,
            packet,
            serialize,
        })
    }

    /// Whether an outstanding XOFF exists for an ingress queue (testing
    /// and introspection).
    pub fn is_pause_sent(&self, q: QueueIndex) -> bool {
        self.pause_sent[q.flat()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DtPolicy;
    use dcn_net::{FlowId, Priority};

    const MTU_PAYLOAD: u64 = 1_000;
    const HDR: u64 = 48;

    fn lossless_pkt(seq: u64) -> Packet {
        Packet::data(
            FlowId::new(1),
            NodeId::new(100),
            NodeId::new(101),
            Priority::new(3),
            TrafficClass::Lossless,
            seq,
            Bytes::new(MTU_PAYLOAD),
            Bytes::new(HDR),
        )
    }

    fn lossy_pkt(seq: u64) -> Packet {
        Packet::data(
            FlowId::new(2),
            NodeId::new(100),
            NodeId::new(101),
            Priority::new(1),
            TrafficClass::Lossy,
            seq,
            Bytes::new(MTU_PAYLOAD),
            Bytes::new(HDR),
        )
    }

    fn small_switch(alpha: f64, buffer: Bytes) -> SharedMemorySwitch {
        let cfg = SwitchConfig {
            total_buffer: buffer,
            headroom_per_queue: Bytes::new(8_000),
            ..SwitchConfig::default()
        };
        SharedMemorySwitch::new(
            NodeId::new(0),
            cfg,
            vec![BitRate::from_gbps(25); 4],
            Box::new(DtPolicy::new(alpha)),
            42,
        )
    }

    #[test]
    fn admit_and_transmit_one_packet() {
        let mut sw = small_switch(0.5, Bytes::from_mb(4));
        let r = sw.receive(
            SimTime::ZERO,
            lossless_pkt(0),
            PortId::new(0),
            PortId::new(1),
        );
        assert!(r.admitted());
        assert!(r.pfc.is_none());
        let tx = r.tx.expect("idle port starts immediately");
        assert_eq!(tx.port, PortId::new(1));
        // 1048 B at 25 Gbps = 336 ns (rounded up).
        assert_eq!(tx.serialize.as_nanos(), 336);
        assert_eq!(sw.occupancy(), Bytes::new(1_048));

        let done = sw.tx_complete(SimTime::from_nanos(336), PortId::new(1));
        assert_eq!(done.departed.seq, 0);
        assert!(done.next.is_none());
        assert_eq!(sw.occupancy(), Bytes::ZERO);
        sw.mmu().check_conservation().unwrap();
    }

    #[test]
    fn second_packet_waits_for_first() {
        let mut sw = small_switch(0.5, Bytes::from_mb(4));
        let r1 = sw.receive(
            SimTime::ZERO,
            lossless_pkt(0),
            PortId::new(0),
            PortId::new(1),
        );
        assert!(r1.tx.is_some());
        let r2 = sw.receive(
            SimTime::ZERO,
            lossless_pkt(1),
            PortId::new(0),
            PortId::new(1),
        );
        assert!(r2.admitted());
        assert!(r2.tx.is_none(), "port busy");
        let done = sw.tx_complete(SimTime::from_nanos(336), PortId::new(1));
        let next = done.next.expect("second packet starts");
        assert_eq!(next.packet.seq, 1);
    }

    #[test]
    fn lossless_overflow_triggers_pause_and_uses_headroom() {
        // Tiny buffer so a few packets cross the DT threshold.
        let mut sw = small_switch(0.125, Bytes::new(10_000));
        let mut paused_at = None;
        for i in 0..8 {
            let r = sw.receive(
                SimTime::ZERO,
                lossless_pkt(i),
                PortId::new(0),
                PortId::new(1),
            );
            assert!(r.admitted(), "lossless must not drop while headroom lasts");
            if let Some(e) = r.pfc {
                if paused_at.is_none() {
                    assert!(e.frame.pause);
                    assert_eq!(e.port, PortId::new(0));
                    paused_at = Some(i);
                }
            }
        }
        assert!(paused_at.is_some(), "threshold crossing must emit XOFF");
        assert_eq!(sw.pfc_counters().pause_frames(), 1, "one XOFF per episode");
        assert!(sw.mmu().headroom_used() > Bytes::ZERO);
        assert!(sw.is_pause_sent(QueueIndex::new(PortId::new(0), Priority::new(3))));
        sw.mmu().check_conservation().unwrap();
    }

    #[test]
    fn headroom_exhaustion_drops_lossless() {
        let cfg = SwitchConfig {
            total_buffer: Bytes::new(2_000),
            headroom_per_queue: Bytes::new(2_000),
            ..SwitchConfig::default()
        };
        let mut sw = SharedMemorySwitch::new(
            NodeId::new(0),
            cfg,
            vec![BitRate::from_gbps(25); 2],
            Box::new(DtPolicy::new(0.125)),
            1,
        );
        let mut dropped = 0;
        for i in 0..6 {
            let r = sw.receive(
                SimTime::ZERO,
                lossless_pkt(i),
                PortId::new(0),
                PortId::new(1),
            );
            if !r.admitted() {
                assert_eq!(
                    r.outcome,
                    ReceiveOutcome::Dropped(DropReason::HeadroomExhausted)
                );
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert_eq!(sw.drop_counters().lossless_packets, dropped);
    }

    #[test]
    fn lossy_over_threshold_is_dropped_not_paused() {
        let mut sw = small_switch(0.125, Bytes::new(10_000));
        let mut dropped = 0;
        for i in 0..10 {
            let r = sw.receive(SimTime::ZERO, lossy_pkt(i), PortId::new(0), PortId::new(1));
            assert!(r.pfc.is_none(), "lossy traffic never pauses");
            if !r.admitted() {
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert_eq!(sw.pfc_counters().pause_frames(), 0);
        assert_eq!(sw.drop_counters().lossy_packets, dropped);
    }

    #[test]
    fn xon_emitted_after_drain() {
        let mut sw = small_switch(0.125, Bytes::new(10_000));
        // Fill until paused.
        for i in 0..8 {
            sw.receive(
                SimTime::ZERO,
                lossless_pkt(i),
                PortId::new(0),
                PortId::new(1),
            );
        }
        assert!(sw.is_pause_sent(QueueIndex::new(PortId::new(0), Priority::new(3))));
        // Drain everything; XON must appear before the queue is empty or
        // at worst on the last departure.
        let mut resumed = false;
        let mut t = SimTime::from_nanos(336);
        for _ in 0..8 {
            let done = sw.tx_complete(t, PortId::new(1));
            if let Some(e) = done.pfc {
                assert!(!e.frame.pause);
                resumed = true;
            }
            t += SimDuration::from_nanos(336);
            if done.next.is_none() {
                break;
            }
        }
        assert!(resumed, "draining must emit XON");
        assert!(!sw.is_pause_sent(QueueIndex::new(PortId::new(0), Priority::new(3))));
        assert_eq!(sw.pfc_counters().resume_frames(), 1);
    }

    #[test]
    fn downstream_pause_stops_and_resume_restarts() {
        let mut sw = small_switch(0.5, Bytes::from_mb(4));
        // Two packets queued; first in flight.
        sw.receive(
            SimTime::ZERO,
            lossless_pkt(0),
            PortId::new(0),
            PortId::new(1),
        );
        sw.receive(
            SimTime::ZERO,
            lossless_pkt(1),
            PortId::new(0),
            PortId::new(1),
        );
        // Downstream pauses priority 3 on port 1.
        let none = sw.handle_pfc(
            SimTime::from_nanos(100),
            PortId::new(1),
            PfcFrame::pause(Priority::new(3)),
        );
        assert!(none.is_none());
        // In-flight packet completes; nothing new starts (paused).
        let done = sw.tx_complete(SimTime::from_nanos(336), PortId::new(1));
        assert!(done.next.is_none(), "paused priority must not start");
        // Resume: the waiting packet starts.
        let tx = sw.handle_pfc(
            SimTime::from_nanos(500),
            PortId::new(1),
            PfcFrame::resume(Priority::new(3)),
        );
        assert_eq!(tx.expect("resume starts tx").packet.seq, 1);
    }

    #[test]
    fn lossy_egress_threshold_drops() {
        // Huge ingress alpha so only the egress check can fail.
        let cfg = SwitchConfig {
            total_buffer: Bytes::from_mb(4),
            egress_alpha_lossy: 0.001, // 4 KB egress cap on an empty switch
            ..SwitchConfig::default()
        };
        let mut sw = SharedMemorySwitch::new(
            NodeId::new(0),
            cfg,
            vec![BitRate::from_gbps(25); 2],
            Box::new(DtPolicy::new(8.0)),
            1,
        );
        let mut egress_drops = 0;
        for i in 0..10 {
            let r = sw.receive(SimTime::ZERO, lossy_pkt(i), PortId::new(0), PortId::new(1));
            if r.outcome == ReceiveOutcome::Dropped(DropReason::EgressLossy) {
                egress_drops += 1;
            }
        }
        assert!(egress_drops > 0);
    }

    #[test]
    fn dctcp_step_marking_kicks_in() {
        let cfg = SwitchConfig {
            ecn_lossy: crate::config::EcnConfig::step(Bytes::new(2_000)),
            ..SwitchConfig::default()
        };
        let mut sw = SharedMemorySwitch::new(
            NodeId::new(0),
            cfg,
            vec![BitRate::from_gbps(25); 2],
            Box::new(DtPolicy::new(0.5)),
            1,
        );
        let mut marked = 0;
        for i in 0..5 {
            let r = sw.receive(SimTime::ZERO, lossy_pkt(i), PortId::new(0), PortId::new(1));
            if let ReceiveOutcome::Admitted { ecn_marked: true } = r.outcome {
                marked += 1;
            }
        }
        // Queue depths: 1048, 2096, 3144, ... -> packets 2..5 marked.
        assert_eq!(marked, 4);
    }

    #[test]
    fn trace_records_causes_that_reconcile_with_counters() {
        use dcn_sim::{TraceConfig, TraceHandle};
        let mut sw = small_switch(0.125, Bytes::new(10_000));
        let trace = TraceHandle::from_config(&TraceConfig::enabled());
        sw.set_trace(trace.clone());
        // Overflow with lossy traffic (drops), then with lossless
        // (pause + headroom), then drain (resume + dequeues).
        for i in 0..10 {
            sw.receive(SimTime::ZERO, lossy_pkt(i), PortId::new(0), PortId::new(1));
        }
        for i in 0..8 {
            sw.receive(
                SimTime::ZERO,
                lossless_pkt(i),
                PortId::new(2),
                PortId::new(1),
            );
        }
        let mut t = SimTime::from_nanos(336);
        loop {
            let done = sw.tx_complete(t, PortId::new(1));
            t += SimDuration::from_nanos(336);
            if done.next.is_none() {
                break;
            }
        }
        let totals = trace.with(|r| r.totals()).unwrap();
        assert_eq!(
            totals.drops(),
            sw.drop_counters().lossy_packets + sw.drop_counters().lossless_packets,
            "trace drop causes must sum to the drop counters"
        );
        assert_eq!(totals.pfc_pauses, sw.pfc_counters().pause_frames());
        assert_eq!(totals.pfc_resumes, sw.pfc_counters().resume_frames());
        // Everything admitted was both enqueued and dequeued.
        let (enq, deq) = trace
            .with(|r| {
                let mut enq = 0u64;
                let mut deq = 0u64;
                for rec in r.records() {
                    match rec.event {
                        dcn_sim::TraceEvent::Enqueue { .. } => enq += 1,
                        dcn_sim::TraceEvent::Dequeue { .. } => deq += 1,
                        _ => {}
                    }
                }
                (enq, deq)
            })
            .unwrap();
        assert!(enq > 0);
        assert_eq!(enq, deq, "switch drained: every enqueue has a dequeue");
    }

    #[test]
    fn port_down_discharges_everything_and_can_emit_xon() {
        use dcn_sim::{TraceConfig, TraceHandle};
        let mut sw = small_switch(0.125, Bytes::new(10_000));
        let trace = TraceHandle::from_config(&TraceConfig::enabled());
        sw.set_trace(trace.clone());
        // Fill until the ingress queue pauses (headroom in use).
        for i in 0..8 {
            sw.receive(
                SimTime::ZERO,
                lossless_pkt(i),
                PortId::new(0),
                PortId::new(1),
            );
        }
        assert!(sw.is_pause_sent(QueueIndex::new(PortId::new(0), Priority::new(3))));
        let queued_before = sw.occupancy();
        assert!(queued_before > Bytes::ZERO);

        // Port 1's link dies: all queued bytes must discharge; the one
        // in-flight packet stays charged until its tx_complete, and its
        // shared charge alone still exceeds the XON hysteresis.
        let pfc = sw.port_down(SimTime::from_nanos(500), PortId::new(1));
        assert!(pfc.is_empty(), "in-flight charge still above hysteresis");
        sw.mmu().check_conservation().unwrap();
        assert_eq!(sw.mmu().headroom_used(), Bytes::ZERO);

        // Finish the in-flight packet: switch fully empty, XON emitted.
        let done = sw.tx_complete(SimTime::from_nanos(600), PortId::new(1));
        let xon = done.pfc.expect("final departure clears the pause");
        assert!(!xon.frame.pause);
        assert!(!sw.is_pause_sent(QueueIndex::new(PortId::new(0), Priority::new(3))));
        assert_eq!(sw.occupancy(), Bytes::ZERO);
        sw.mmu().check_conservation().unwrap();

        // Drained packets were counted as lossless drops and traced.
        assert_eq!(sw.drop_counters().lossless_packets, 7);
        let totals = trace.with(|r| r.totals()).unwrap();
        assert_eq!(totals.drops_link_down, 7);
        assert_eq!(
            totals.drops(),
            sw.drop_counters().lossless_packets + sw.drop_counters().lossy_packets
        );
    }

    #[test]
    fn watchdog_force_resumes_stuck_pause_and_ignores_stale_deadlines() {
        use dcn_sim::{TraceConfig, TraceHandle};
        let mut sw = small_switch(0.5, Bytes::from_mb(4));
        let trace = TraceHandle::from_config(&TraceConfig::enabled());
        sw.set_trace(trace.clone());
        sw.receive(
            SimTime::ZERO,
            lossless_pkt(0),
            PortId::new(0),
            PortId::new(1),
        );
        sw.receive(
            SimTime::ZERO,
            lossless_pkt(1),
            PortId::new(0),
            PortId::new(1),
        );
        let q = QueueIndex::new(PortId::new(1), Priority::new(3));

        // Stuck XOFF against egress port 1.
        sw.handle_pfc(
            SimTime::from_nanos(100),
            PortId::new(1),
            PfcFrame::pause(Priority::new(3)),
        );
        let generation = sw.pause_generation(q);
        sw.tx_complete(SimTime::from_nanos(336), PortId::new(1));
        assert!(sw.mmu().egress_paused(q));

        // The watchdog fires: pause cleared, blocked packet starts.
        let tx = sw.pfc_watchdog_fire(
            SimTime::from_micros(10),
            PortId::new(1),
            Priority::new(3),
            generation,
        );
        assert_eq!(tx.expect("forced resume starts tx").packet.seq, 1);
        assert!(!sw.mmu().egress_paused(q));
        assert_eq!(sw.pfc_counters().watchdog_fires(), 1);
        assert_eq!(trace.with(|r| r.totals()).unwrap().watchdog_fires, 1);

        // A stale deadline (same generation, already resumed) is a no-op,
        // and so is one against a later pause episode.
        assert!(sw
            .pfc_watchdog_fire(
                SimTime::from_micros(11),
                PortId::new(1),
                Priority::new(3),
                generation
            )
            .is_none());
        sw.handle_pfc(
            SimTime::from_micros(12),
            PortId::new(1),
            PfcFrame::pause(Priority::new(3)),
        );
        assert_eq!(sw.pause_generation(q), generation + 1);
        assert!(sw
            .pfc_watchdog_fire(
                SimTime::from_micros(13),
                PortId::new(1),
                Priority::new(3),
                generation
            )
            .is_none());
        assert_eq!(sw.pfc_counters().watchdog_fires(), 1);
    }

    #[test]
    fn reset_port_pfc_clears_both_directions() {
        let mut sw = small_switch(0.125, Bytes::new(10_000));
        // Ingress port 0 pauses (XOFF outstanding) and downstream pause
        // lands on egress port 1.
        for i in 0..8 {
            sw.receive(
                SimTime::ZERO,
                lossless_pkt(i),
                PortId::new(0),
                PortId::new(1),
            );
        }
        sw.handle_pfc(
            SimTime::from_nanos(10),
            PortId::new(0),
            PfcFrame::pause(Priority::new(3)),
        );
        assert!(sw.is_pause_sent(QueueIndex::new(PortId::new(0), Priority::new(3))));
        assert!(sw
            .mmu()
            .egress_paused(QueueIndex::new(PortId::new(0), Priority::new(3))));

        // Port 0's link renegotiates: both the XOFF we sent and the
        // pause we honour across it are forgotten.
        sw.reset_port_pfc(SimTime::from_micros(1), PortId::new(0));
        assert!(!sw.is_pause_sent(QueueIndex::new(PortId::new(0), Priority::new(3))));
        assert!(!sw
            .mmu()
            .egress_paused(QueueIndex::new(PortId::new(0), Priority::new(3))));
        sw.mmu().check_conservation().unwrap();
    }

    #[test]
    fn forwarding_drop_reconciles_counters_and_trace() {
        use dcn_sim::{TraceConfig, TraceHandle};
        let mut sw = small_switch(0.5, Bytes::from_mb(4));
        let trace = TraceHandle::from_config(&TraceConfig::enabled());
        sw.set_trace(trace.clone());
        let pkt = lossy_pkt(0);
        sw.record_forwarding_drop(SimTime::ZERO, &pkt, PortId::new(2), TraceDropCause::NoRoute);
        assert_eq!(sw.drop_counters().lossy_packets, 1);
        let totals = trace.with(|r| r.totals()).unwrap();
        assert_eq!(totals.drops_no_route, 1);
        assert_eq!(totals.drops(), 1);
    }

    fn occamy_switch(buffer: Bytes) -> SharedMemorySwitch {
        let cfg = SwitchConfig {
            total_buffer: buffer,
            headroom_per_queue: Bytes::new(8_000),
            ..SwitchConfig::default()
        };
        SharedMemorySwitch::new(
            NodeId::new(0),
            cfg,
            vec![BitRate::from_gbps(25); 4],
            Box::new(
                crate::policy::OccamyPolicy::new(0.5)
                    .with_protected_priorities(&[Priority::new(3)]),
            ),
            42,
        )
    }

    #[test]
    fn occamy_evicts_lossy_backlog_to_admit_lossless() {
        use dcn_sim::{TraceConfig, TraceHandle};
        let mut sw = occamy_switch(Bytes::new(10_000));
        let trace = TraceHandle::from_config(&TraceConfig::enabled());
        sw.set_trace(trace.clone());
        // Fill the shared pool with lossy backlog on port 1 (first
        // packet goes in flight; the rest queue).
        let mut lossy_admitted = 0u64;
        for i in 0..10 {
            if sw
                .receive(SimTime::ZERO, lossy_pkt(i), PortId::new(0), PortId::new(1))
                .admitted()
            {
                lossy_admitted += 1;
            }
        }
        assert!(lossy_admitted >= 3, "need a queued lossy backlog");
        // Exhaust the lossless queue's headroom so arrivals hit the
        // rejection path where preemption kicks in.
        let mut evicted_seen = 0u64;
        for i in 0..24 {
            sw.receive(
                SimTime::ZERO,
                lossless_pkt(i),
                PortId::new(2),
                PortId::new(1),
            );
            evicted_seen = sw.drop_counters().evicted_packets;
            if evicted_seen > 0 {
                break;
            }
        }
        assert!(
            evicted_seen > 0,
            "preemption must evict lossy backlog for lossless arrivals"
        );
        assert_eq!(
            sw.drop_counters().lossless_packets,
            0,
            "eviction made room before any lossless drop"
        );
        sw.mmu().check_conservation().unwrap();
        let totals = trace.with(|r| r.totals()).unwrap();
        assert_eq!(totals.drops_evicted, sw.drop_counters().evicted_packets);
        assert_eq!(
            totals.drops(),
            sw.drop_counters().lossy_packets + sw.drop_counters().lossless_packets,
            "evictions reconcile: counted once in trace, once in lossy"
        );
    }

    #[test]
    fn eviction_then_drain_conserves_buffer() {
        let mut sw = occamy_switch(Bytes::new(10_000));
        let mut t = SimTime::ZERO;
        for i in 0..10 {
            sw.receive(t, lossy_pkt(i), PortId::new(0), PortId::new(1));
            t += SimDuration::from_nanos(30);
        }
        for i in 0..16 {
            sw.receive(t, lossless_pkt(i), PortId::new(2), PortId::new(1));
            sw.mmu().check_conservation().unwrap();
            t += SimDuration::from_nanos(30);
        }
        assert!(sw.drop_counters().evicted_packets > 0);
        // Drain to empty: every surviving charge reverses exactly once.
        loop {
            t += SimDuration::from_nanos(400);
            if sw.tx_complete(t, PortId::new(1)).next.is_none() {
                break;
            }
            sw.mmu().check_conservation().unwrap();
        }
        assert_eq!(sw.occupancy(), Bytes::ZERO);
        sw.mmu().check_conservation().unwrap();
    }

    #[test]
    fn eviction_never_touches_lossless_packets() {
        // Occamy with *no* protected priorities: the switch-level guard
        // alone must keep lossless packets unevictable.
        let cfg = SwitchConfig {
            total_buffer: Bytes::new(10_000),
            headroom_per_queue: Bytes::new(8_000),
            ..SwitchConfig::default()
        };
        let mut sw = SharedMemorySwitch::new(
            NodeId::new(0),
            cfg,
            vec![BitRate::from_gbps(25); 4],
            Box::new(crate::policy::OccamyPolicy::new(0.125)),
            42,
        );
        // Only lossless backlog exists; lossy arrivals that get rejected
        // must not evict it.
        for i in 0..8 {
            sw.receive(
                SimTime::ZERO,
                lossless_pkt(i),
                PortId::new(0),
                PortId::new(1),
            );
        }
        let queued = sw.occupancy();
        for i in 0..10 {
            sw.receive(SimTime::ZERO, lossy_pkt(i), PortId::new(2), PortId::new(1));
        }
        assert_eq!(sw.drop_counters().evicted_packets, 0);
        assert!(sw.occupancy() >= queued, "lossless backlog untouched");
        sw.mmu().check_conservation().unwrap();
    }

    #[test]
    fn non_preemptive_rejection_path_is_unchanged() {
        // DT on the eviction-hook switch must behave exactly as before:
        // same drops, no evictions, no extra trace events.
        use dcn_sim::{TraceConfig, TraceHandle};
        let mut sw = small_switch(0.125, Bytes::new(10_000));
        let trace = TraceHandle::from_config(&TraceConfig::enabled());
        sw.set_trace(trace.clone());
        for i in 0..10 {
            sw.receive(SimTime::ZERO, lossy_pkt(i), PortId::new(0), PortId::new(1));
        }
        assert!(sw.drop_counters().lossy_packets > 0);
        assert_eq!(sw.drop_counters().evicted_packets, 0);
        assert_eq!(trace.with(|r| r.totals()).unwrap().drops_evicted, 0);
    }

    fn lossy_rdma_pkt(seq: u64) -> Packet {
        Packet::data(
            FlowId::new(3),
            NodeId::new(100),
            NodeId::new(101),
            Priority::new(3),
            TrafficClass::LossyRdma,
            seq,
            Bytes::new(MTU_PAYLOAD),
            Bytes::new(HDR),
        )
    }

    #[test]
    fn lossy_rdma_gap_emits_one_nack_per_episode() {
        use dcn_net::PacketKind;
        use dcn_sim::{TraceConfig, TraceHandle};
        let mut sw = small_switch(0.5, Bytes::from_mb(4));
        let trace = TraceHandle::from_config(&TraceConfig::enabled());
        sw.set_trace(trace.clone());
        // In-order arrivals: no NACK.
        for seq in [0, MTU_PAYLOAD] {
            let r = sw.receive(
                SimTime::ZERO,
                lossy_rdma_pkt(seq),
                PortId::new(0),
                PortId::new(1),
            );
            assert!(r.admitted());
            assert!(r.nack.is_none());
        }
        // Segment 2 lost upstream: segment 3 arrives, exposing the gap.
        let r = sw.receive(
            SimTime::ZERO,
            lossy_rdma_pkt(3 * MTU_PAYLOAD),
            PortId::new(0),
            PortId::new(1),
        );
        let nack = r.nack.expect("gap must be NACKed");
        assert_eq!(nack.class, TrafficClass::LossyRdma);
        // Addressed receiver→sender so normal routing carries it back.
        assert_eq!(nack.src, NodeId::new(101));
        assert_eq!(nack.dst, NodeId::new(100));
        assert_eq!(
            nack.kind,
            PacketKind::Nack {
                nack_seq: 2 * MTU_PAYLOAD,
                cumulative_ack: 0
            }
        );
        // The same episode does not re-NACK on the next in-order packet,
        // and a retransmission filling the hole does not NACK either.
        let r = sw.receive(
            SimTime::ZERO,
            lossy_rdma_pkt(4 * MTU_PAYLOAD),
            PortId::new(0),
            PortId::new(1),
        );
        assert!(r.nack.is_none());
        let r = sw.receive(
            SimTime::ZERO,
            lossy_rdma_pkt(2 * MTU_PAYLOAD),
            PortId::new(0),
            PortId::new(1),
        );
        assert!(r.nack.is_none(), "retransmission below high-water");
        assert_eq!(trace.with(|r| r.totals()).unwrap().irn_nacks, 1);
    }

    #[test]
    fn lossy_rdma_drops_refine_lossy_counters_without_pfc() {
        let mut sw = small_switch(0.125, Bytes::new(10_000));
        let mut dropped = 0;
        for i in 0..10 {
            let r = sw.receive(
                SimTime::ZERO,
                lossy_rdma_pkt(i * MTU_PAYLOAD),
                PortId::new(0),
                PortId::new(1),
            );
            assert!(r.pfc.is_none(), "lossy RDMA must never pause");
            if !r.admitted() {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "overflow must drop lossy RDMA");
        assert_eq!(sw.pfc_counters().pause_frames(), 0);
        assert_eq!(sw.drop_counters().lossy_rdma_packets, dropped);
        assert_eq!(
            sw.drop_counters().lossy_packets,
            dropped,
            "lossy-RDMA drops also count in the lossy total"
        );
        assert_eq!(sw.drop_counters().lossless_packets, 0);
    }

    #[test]
    fn conservation_through_mixed_traffic() {
        let mut sw = small_switch(0.5, Bytes::from_mb(4));
        let mut t = SimTime::ZERO;
        let mut in_flight_ports: Vec<PortId> = Vec::new();
        for i in 0..50 {
            let out = PortId::new((i % 3 + 1) as u16);
            let pkt = if i % 2 == 0 {
                lossless_pkt(i)
            } else {
                lossy_pkt(i)
            };
            let r = sw.receive(t, pkt, PortId::new(0), out);
            if r.tx.is_some() {
                in_flight_ports.push(out);
            }
            t += SimDuration::from_nanos(50);
        }
        sw.mmu().check_conservation().unwrap();
        // Drain every port to empty.
        while let Some(port) = in_flight_ports.pop() {
            t += SimDuration::from_nanos(400);
            let done = sw.tx_complete(t, port);
            if done.next.is_some() {
                in_flight_ports.push(port);
            }
            sw.mmu().check_conservation().unwrap();
        }
        assert_eq!(sw.occupancy(), Bytes::ZERO);
    }
}
