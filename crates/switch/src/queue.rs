//! Per-egress-port priority queues with round-robin scheduling.
//!
//! Each egress port has eight FIFO priority queues (one per 802.1p
//! class) and serializes one packet at a time. The scheduler is
//! round-robin over non-empty, non-paused priorities, as the paper's
//! switch configuration describes ("egress ports schedule 8 priority
//! queue packets through Round Robin").

use std::collections::VecDeque;

use dcn_net::{FlowId, Packet, PortId, Priority};
use dcn_sim::Bytes;

use crate::mmu::Charge;

/// A packet held in an egress queue together with the bookkeeping needed
/// to reverse its MMU charge when it departs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedPacket {
    /// The packet itself.
    pub packet: Packet,
    /// The ingress port it arrived on (its priority names the ingress
    /// queue together with this port).
    pub in_port: PortId,
    /// How its bytes were charged at admission.
    pub charge: Charge,
}

/// Bookkeeping for the packet being serialized. The packet itself is
/// *moved* to the event loop when transmission starts (no per-transmit
/// clone); only what the departure path needs is retained here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// The flow the packet belongs to.
    pub flow: FlowId,
    /// The packet's sequence number within its flow.
    pub seq: u64,
    /// The packet's priority (names both queues with the ports).
    pub priority: Priority,
    /// The packet's total size on the wire.
    pub size: Bytes,
    /// The ingress port it arrived on.
    pub in_port: PortId,
    /// How its bytes were charged at admission.
    pub charge: Charge,
}

/// One egress port: eight priority FIFOs, a round-robin pointer, and at
/// most one packet in flight on the wire.
#[derive(Debug, Default)]
pub struct EgressPort {
    queues: [VecDeque<QueuedPacket>; Priority::COUNT],
    /// Bit `i` set ⇔ `queues[i]` is non-empty. Lets the round-robin scan
    /// skip empty priorities on one byte instead of touching eight
    /// `VecDeque` headers (four cache lines) per start attempt.
    nonempty: u8,
    rr_next: usize,
    in_flight: Option<InFlight>,
}

impl EgressPort {
    /// An empty port.
    pub fn new() -> Self {
        EgressPort::default()
    }

    /// Appends a packet to its priority FIFO.
    pub fn enqueue(&mut self, qp: QueuedPacket) {
        let prio = qp.packet.priority.index();
        self.queues[prio].push_back(qp);
        self.nonempty |= 1 << prio;
    }

    /// Whether the transmitter is idle (no packet being serialized).
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// Packets queued at one priority (excluding any in flight).
    pub fn queued_at(&self, priority: Priority) -> usize {
        self.queues[priority.index()].len()
    }

    /// Total queued packets (excluding any in flight).
    pub fn queued_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Starts transmitting the next eligible packet, if the port is idle
    /// and some non-paused priority has one. Round-robin resumes after
    /// the last served priority. Returns the packet, *moved* out of its
    /// queue for delivery to the link peer; the discharge bookkeeping
    /// stays behind as the port's [`InFlight`] record.
    ///
    /// `paused(prio)` reports whether a downstream XOFF blocks a
    /// priority.
    pub fn start_next(&mut self, paused: impl Fn(Priority) -> bool) -> Option<Packet> {
        if self.in_flight.is_some() || self.nonempty == 0 {
            return None;
        }
        for off in 0..Priority::COUNT {
            let ix = (self.rr_next + off) % Priority::COUNT;
            if self.nonempty & (1 << ix) == 0 || paused(Priority::new(ix as u8)) {
                continue;
            }
            let qp = self.queues[ix].pop_front().expect("nonempty bit set");
            if self.queues[ix].is_empty() {
                self.nonempty &= !(1 << ix);
            }
            self.rr_next = (ix + 1) % Priority::COUNT;
            self.in_flight = Some(InFlight {
                flow: qp.packet.flow,
                seq: qp.packet.seq,
                priority: qp.packet.priority,
                size: qp.packet.size,
                in_port: qp.in_port,
                charge: qp.charge,
            });
            return Some(qp.packet);
        }
        None
    }

    /// Completes the in-flight transmission, returning the departed
    /// packet's bookkeeping for MMU discharge.
    ///
    /// # Panics
    ///
    /// Panics if nothing was in flight — a scheduling bug.
    pub fn finish_tx(&mut self) -> InFlight {
        self.in_flight.take().expect("tx_complete with idle port")
    }

    /// Bookkeeping of the packet currently being serialized, if any.
    pub fn in_flight(&self) -> Option<&InFlight> {
        self.in_flight.as_ref()
    }

    /// Removes every queued packet (port-down drain), in deterministic
    /// priority-then-FIFO order, so the caller can reverse their MMU
    /// charges. Any in-flight packet is left alone: its serialization
    /// already started and its `tx_complete` will discharge it normally.
    pub fn drain_all(&mut self) -> Vec<QueuedPacket> {
        let mut out = Vec::with_capacity(self.queued_total());
        for q in self.queues.iter_mut() {
            out.extend(q.drain(..));
        }
        self.nonempty = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmu::{Charge, Pool};
    use dcn_net::{FlowId, NodeId, TrafficClass};
    use dcn_sim::Bytes;

    fn qp(prio: u8, seq: u64) -> QueuedPacket {
        QueuedPacket {
            packet: Packet::data(
                FlowId::new(seq),
                NodeId::new(0),
                NodeId::new(1),
                Priority::new(prio),
                TrafficClass::Lossless,
                seq,
                Bytes::new(1_000),
                Bytes::new(48),
            ),
            in_port: PortId::new(0),
            charge: Charge {
                reserved: Bytes::ZERO,
                pooled: Bytes::new(1_048),
                pool: Pool::Shared,
            },
        }
    }

    #[test]
    fn fifo_within_priority() {
        let mut p = EgressPort::new();
        p.enqueue(qp(3, 1));
        p.enqueue(qp(3, 2));
        let first = p.start_next(|_| false).unwrap().seq;
        assert_eq!(first, 1);
        p.finish_tx();
        let second = p.start_next(|_| false).unwrap().seq;
        assert_eq!(second, 2);
    }

    #[test]
    fn round_robin_alternates_priorities() {
        let mut p = EgressPort::new();
        p.enqueue(qp(1, 10));
        p.enqueue(qp(1, 11));
        p.enqueue(qp(3, 30));
        p.enqueue(qp(3, 31));
        let mut served = Vec::new();
        while let Some(q) = p.start_next(|_| false) {
            served.push(q.seq);
            p.finish_tx();
        }
        assert_eq!(served, vec![10, 30, 11, 31]);
    }

    #[test]
    fn paused_priority_is_skipped() {
        let mut p = EgressPort::new();
        p.enqueue(qp(1, 10));
        p.enqueue(qp(3, 30));
        let got = p.start_next(|prio| prio == Priority::new(1)).unwrap().seq;
        assert_eq!(got, 30);
        p.finish_tx();
        // Everything eligible is paused: nothing starts.
        assert!(p.start_next(|_| true).is_none());
        assert_eq!(p.queued_total(), 1);
    }

    #[test]
    fn busy_port_does_not_start_another() {
        let mut p = EgressPort::new();
        p.enqueue(qp(3, 1));
        p.enqueue(qp(3, 2));
        assert!(p.start_next(|_| false).is_some());
        assert!(p.start_next(|_| false).is_none(), "already busy");
        assert!(!p.is_idle());
        let done = p.finish_tx();
        assert_eq!(done.seq, 1);
        assert!(p.is_idle());
    }

    #[test]
    #[should_panic(expected = "tx_complete with idle port")]
    fn finish_on_idle_panics() {
        EgressPort::new().finish_tx();
    }

    #[test]
    fn drain_all_empties_queues_but_keeps_in_flight() {
        let mut p = EgressPort::new();
        p.enqueue(qp(3, 1));
        p.enqueue(qp(1, 2));
        p.enqueue(qp(3, 3));
        // Round-robin starts at priority 0, so priority 1 (seq 2) wins.
        assert_eq!(p.start_next(|_| false).unwrap().seq, 2);
        let drained = p.drain_all();
        let seqs: Vec<u64> = drained.iter().map(|q| q.packet.seq).collect();
        assert_eq!(seqs, vec![1, 3], "priority-then-FIFO order");
        assert_eq!(p.queued_total(), 0);
        assert!(!p.is_idle(), "in-flight record untouched");
        assert_eq!(p.finish_tx().seq, 2);
    }
}
