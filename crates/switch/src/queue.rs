//! Per-egress-port priority queues with round-robin scheduling.
//!
//! Each egress port has eight FIFO priority queues (one per 802.1p
//! class) and serializes one packet at a time. The scheduler is
//! round-robin over non-empty, non-paused priorities, as the paper's
//! switch configuration describes ("egress ports schedule 8 priority
//! queue packets through Round Robin").

use std::collections::VecDeque;

use dcn_net::{FlowId, Packet, PortId, Priority};
use dcn_sim::Bytes;

use crate::mmu::Charge;

/// A packet held in an egress queue together with the bookkeeping needed
/// to reverse its MMU charge when it departs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedPacket {
    /// The packet itself.
    pub packet: Packet,
    /// The ingress port it arrived on (its priority names the ingress
    /// queue together with this port).
    pub in_port: PortId,
    /// How its bytes were charged at admission.
    pub charge: Charge,
}

/// Bookkeeping for the packet being serialized. The packet itself is
/// *moved* to the event loop when transmission starts (no per-transmit
/// clone); only what the departure path needs is retained here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// The flow the packet belongs to.
    pub flow: FlowId,
    /// The packet's sequence number within its flow.
    pub seq: u64,
    /// The packet's priority (names both queues with the ports).
    pub priority: Priority,
    /// The packet's total size on the wire.
    pub size: Bytes,
    /// The ingress port it arrived on.
    pub in_port: PortId,
    /// How its bytes were charged at admission.
    pub charge: Charge,
}

/// One egress port: eight priority FIFOs, a round-robin pointer, and at
/// most one packet in flight on the wire.
#[derive(Debug, Default)]
pub struct EgressPort {
    queues: [VecDeque<QueuedPacket>; Priority::COUNT],
    /// Bit `i` set ⇔ `queues[i]` is non-empty. Lets the round-robin scan
    /// skip empty priorities on one byte instead of touching eight
    /// `VecDeque` headers (four cache lines) per start attempt.
    nonempty: u8,
    rr_next: usize,
    in_flight: Option<InFlight>,
}

impl EgressPort {
    /// An empty port.
    pub fn new() -> Self {
        EgressPort::default()
    }

    /// Appends a packet to its priority FIFO.
    pub fn enqueue(&mut self, qp: QueuedPacket) {
        let prio = qp.packet.priority.index();
        self.queues[prio].push_back(qp);
        self.nonempty |= 1 << prio;
    }

    /// Whether the transmitter is idle (no packet being serialized).
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// Packets queued at one priority (excluding any in flight).
    pub fn queued_at(&self, priority: Priority) -> usize {
        self.queues[priority.index()].len()
    }

    /// Total queued packets (excluding any in flight).
    pub fn queued_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Starts transmitting the next eligible packet, if the port is idle
    /// and some non-paused priority has one. Round-robin resumes after
    /// the last served priority. Returns the packet, *moved* out of its
    /// queue for delivery to the link peer; the discharge bookkeeping
    /// stays behind as the port's [`InFlight`] record.
    ///
    /// `paused(prio)` reports whether a downstream XOFF blocks a
    /// priority.
    pub fn start_next(&mut self, paused: impl Fn(Priority) -> bool) -> Option<Packet> {
        if self.in_flight.is_some() || self.nonempty == 0 {
            return None;
        }
        for off in 0..Priority::COUNT {
            let ix = (self.rr_next + off) % Priority::COUNT;
            if self.nonempty & (1 << ix) == 0 || paused(Priority::new(ix as u8)) {
                continue;
            }
            let qp = self.queues[ix].pop_front().expect("nonempty bit set");
            if self.queues[ix].is_empty() {
                self.nonempty &= !(1 << ix);
            }
            self.rr_next = (ix + 1) % Priority::COUNT;
            self.in_flight = Some(InFlight {
                flow: qp.packet.flow,
                seq: qp.packet.seq,
                priority: qp.packet.priority,
                size: qp.packet.size,
                in_port: qp.in_port,
                charge: qp.charge,
            });
            return Some(qp.packet);
        }
        None
    }

    /// Completes the in-flight transmission, returning the departed
    /// packet's bookkeeping for MMU discharge.
    ///
    /// # Panics
    ///
    /// Panics if nothing was in flight — a scheduling bug.
    pub fn finish_tx(&mut self) -> InFlight {
        self.in_flight.take().expect("tx_complete with idle port")
    }

    /// The single priority with queued packets, if *exactly one* FIFO is
    /// non-empty. `None` when the port is empty or contended — the
    /// eligibility test for coalescing back-to-back serializations into
    /// a packet train (round-robin is a no-op over one priority, so a
    /// train cannot reorder anything the scheduler would interleave).
    pub fn sole_nonempty(&self) -> Option<Priority> {
        if self.nonempty != 0 && self.nonempty & (self.nonempty - 1) == 0 {
            Some(Priority::new(self.nonempty.trailing_zeros() as u8))
        } else {
            None
        }
    }

    /// Pops the head of one priority FIFO *without* touching the
    /// in-flight record or the round-robin pointer: a train commits its
    /// follow-on legs this way, so after the train the port's scheduler
    /// state is exactly what serving the same packets one-by-one through
    /// [`EgressPort::start_next`] would have left (each serve of the
    /// sole priority `p` sets `rr_next` to `p + 1`, which the first
    /// leg's `start_next` already did).
    pub fn pop_front(&mut self, priority: Priority) -> Option<QueuedPacket> {
        let ix = priority.index();
        let qp = self.queues[ix].pop_front()?;
        if self.queues[ix].is_empty() {
            self.nonempty &= !(1 << ix);
        }
        Some(qp)
    }

    /// Pops the *tail* of one priority FIFO — the newest queued packet,
    /// the one a preemptive eviction removes. Evicting from the tail
    /// never reorders the survivors and never touches the in-flight
    /// record (a packet already serializing cannot be recalled), so the
    /// scheduler state after an eviction is exactly as if the evicted
    /// packet had never been admitted.
    pub fn pop_back(&mut self, priority: Priority) -> Option<QueuedPacket> {
        let ix = priority.index();
        let qp = self.queues[ix].pop_back()?;
        if self.queues[ix].is_empty() {
            self.nonempty &= !(1 << ix);
        }
        Some(qp)
    }

    /// Pushes a packet back at the *front* of its priority FIFO — the
    /// inverse of [`EgressPort::pop_front`], used when a split revokes a
    /// train leg that has not started serializing. Revoking legs in
    /// reverse commit order restores the original FIFO order.
    pub fn requeue_front(&mut self, qp: QueuedPacket) {
        let ix = qp.packet.priority.index();
        self.queues[ix].push_front(qp);
        self.nonempty |= 1 << ix;
    }

    /// Replaces the in-flight record. A train keeps its first leg's
    /// record in flight; when a split lands mid-train the leg currently
    /// on the wire takes over, so the eventual `finish_tx` discharges
    /// the right packet.
    pub fn set_in_flight(&mut self, inf: InFlight) {
        self.in_flight = Some(inf);
    }

    /// Bookkeeping of the packet currently being serialized, if any.
    pub fn in_flight(&self) -> Option<&InFlight> {
        self.in_flight.as_ref()
    }

    /// Removes every queued packet (port-down drain), in deterministic
    /// priority-then-FIFO order, so the caller can reverse their MMU
    /// charges. Any in-flight packet is left alone: its serialization
    /// already started and its `tx_complete` will discharge it normally.
    pub fn drain_all(&mut self) -> Vec<QueuedPacket> {
        let mut out = Vec::with_capacity(self.queued_total());
        for q in self.queues.iter_mut() {
            out.extend(q.drain(..));
        }
        self.nonempty = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmu::{Charge, Pool};
    use dcn_net::{FlowId, NodeId, TrafficClass};
    use dcn_sim::Bytes;

    fn qp(prio: u8, seq: u64) -> QueuedPacket {
        QueuedPacket {
            packet: Packet::data(
                FlowId::new(seq),
                NodeId::new(0),
                NodeId::new(1),
                Priority::new(prio),
                TrafficClass::Lossless,
                seq,
                Bytes::new(1_000),
                Bytes::new(48),
            ),
            in_port: PortId::new(0),
            charge: Charge {
                reserved: Bytes::ZERO,
                pooled: Bytes::new(1_048),
                pool: Pool::Shared,
            },
        }
    }

    #[test]
    fn fifo_within_priority() {
        let mut p = EgressPort::new();
        p.enqueue(qp(3, 1));
        p.enqueue(qp(3, 2));
        let first = p.start_next(|_| false).unwrap().seq;
        assert_eq!(first, 1);
        p.finish_tx();
        let second = p.start_next(|_| false).unwrap().seq;
        assert_eq!(second, 2);
    }

    #[test]
    fn round_robin_alternates_priorities() {
        let mut p = EgressPort::new();
        p.enqueue(qp(1, 10));
        p.enqueue(qp(1, 11));
        p.enqueue(qp(3, 30));
        p.enqueue(qp(3, 31));
        let mut served = Vec::new();
        while let Some(q) = p.start_next(|_| false) {
            served.push(q.seq);
            p.finish_tx();
        }
        assert_eq!(served, vec![10, 30, 11, 31]);
    }

    #[test]
    fn paused_priority_is_skipped() {
        let mut p = EgressPort::new();
        p.enqueue(qp(1, 10));
        p.enqueue(qp(3, 30));
        let got = p.start_next(|prio| prio == Priority::new(1)).unwrap().seq;
        assert_eq!(got, 30);
        p.finish_tx();
        // Everything eligible is paused: nothing starts.
        assert!(p.start_next(|_| true).is_none());
        assert_eq!(p.queued_total(), 1);
    }

    #[test]
    fn busy_port_does_not_start_another() {
        let mut p = EgressPort::new();
        p.enqueue(qp(3, 1));
        p.enqueue(qp(3, 2));
        assert!(p.start_next(|_| false).is_some());
        assert!(p.start_next(|_| false).is_none(), "already busy");
        assert!(!p.is_idle());
        let done = p.finish_tx();
        assert_eq!(done.seq, 1);
        assert!(p.is_idle());
    }

    #[test]
    #[should_panic(expected = "tx_complete with idle port")]
    fn finish_on_idle_panics() {
        EgressPort::new().finish_tx();
    }

    #[test]
    fn sole_nonempty_requires_exactly_one_priority() {
        let mut p = EgressPort::new();
        assert_eq!(p.sole_nonempty(), None, "empty port");
        p.enqueue(qp(3, 1));
        p.enqueue(qp(3, 2));
        assert_eq!(p.sole_nonempty(), Some(Priority::new(3)));
        p.enqueue(qp(1, 3));
        assert_eq!(p.sole_nonempty(), None, "contended port");
    }

    #[test]
    fn pop_front_then_requeue_front_restores_fifo_order() {
        let mut p = EgressPort::new();
        for seq in 1..=3 {
            p.enqueue(qp(3, seq));
        }
        let a = p.pop_front(Priority::new(3)).unwrap();
        let b = p.pop_front(Priority::new(3)).unwrap();
        assert_eq!((a.packet.seq, b.packet.seq), (1, 2));
        // Reverse commit order, like a train split revoking legs.
        p.requeue_front(b);
        p.requeue_front(a);
        let served: Vec<u64> = std::iter::from_fn(|| {
            let s = p.start_next(|_| false)?.seq;
            p.finish_tx();
            Some(s)
        })
        .collect();
        assert_eq!(served, vec![1, 2, 3]);
    }

    #[test]
    fn pop_front_clears_nonempty_bit() {
        let mut p = EgressPort::new();
        p.enqueue(qp(3, 1));
        assert!(p.pop_front(Priority::new(3)).is_some());
        assert_eq!(p.sole_nonempty(), None);
        assert!(p.pop_front(Priority::new(3)).is_none());
        assert!(
            p.start_next(|_| false).is_none(),
            "scheduler sees the emptied queue"
        );
    }

    #[test]
    fn pop_front_leaves_rr_pointer_equivalent_to_serial_serves() {
        // Serve 3 packets of priority 3 one-by-one on one port, and as
        // leg pops after a single start on another: the next contended
        // round-robin decision must match.
        let mut serial = EgressPort::new();
        let mut train = EgressPort::new();
        for seq in 1..=3 {
            serial.enqueue(qp(3, seq));
            train.enqueue(qp(3, seq));
        }
        for _ in 0..3 {
            serial.start_next(|_| false).unwrap();
            serial.finish_tx();
        }
        train.start_next(|_| false).unwrap();
        train.pop_front(Priority::new(3)).unwrap();
        train.pop_front(Priority::new(3)).unwrap();
        train.finish_tx();
        for p in [&mut serial, &mut train] {
            p.enqueue(qp(1, 10));
            p.enqueue(qp(5, 50));
        }
        let s = serial.start_next(|_| false).unwrap().seq;
        let t = train.start_next(|_| false).unwrap().seq;
        assert_eq!(s, t, "round-robin resumes identically");
        assert_eq!(s, 50, "rr_next sits just past the served priority");
    }

    #[test]
    fn pop_back_evicts_newest_and_clears_bit() {
        let mut p = EgressPort::new();
        for seq in 1..=3 {
            p.enqueue(qp(3, seq));
        }
        assert_eq!(p.pop_back(Priority::new(3)).unwrap().packet.seq, 3);
        assert_eq!(p.pop_back(Priority::new(3)).unwrap().packet.seq, 2);
        assert_eq!(p.sole_nonempty(), Some(Priority::new(3)));
        assert_eq!(p.pop_back(Priority::new(3)).unwrap().packet.seq, 1);
        assert_eq!(p.sole_nonempty(), None, "nonempty bit cleared");
        assert!(p.pop_back(Priority::new(3)).is_none());
        assert!(p.start_next(|_| false).is_none());
    }

    #[test]
    fn pop_back_leaves_in_flight_untouched() {
        let mut p = EgressPort::new();
        p.enqueue(qp(3, 1));
        p.enqueue(qp(3, 2));
        assert_eq!(p.start_next(|_| false).unwrap().seq, 1);
        assert_eq!(p.pop_back(Priority::new(3)).unwrap().packet.seq, 2);
        assert!(!p.is_idle(), "serializing packet cannot be evicted");
        assert_eq!(p.finish_tx().seq, 1);
    }

    #[test]
    fn set_in_flight_replaces_record() {
        let mut p = EgressPort::new();
        p.enqueue(qp(3, 1));
        p.start_next(|_| false).unwrap();
        let replacement = InFlight {
            flow: FlowId::new(9),
            seq: 9,
            priority: Priority::new(3),
            size: Bytes::new(1_000),
            in_port: PortId::new(0),
            charge: Charge {
                reserved: Bytes::ZERO,
                pooled: Bytes::ZERO,
                pool: Pool::Shared,
            },
        };
        p.set_in_flight(replacement);
        assert_eq!(p.finish_tx().seq, 9);
    }

    #[test]
    fn drain_all_empties_queues_but_keeps_in_flight() {
        let mut p = EgressPort::new();
        p.enqueue(qp(3, 1));
        p.enqueue(qp(1, 2));
        p.enqueue(qp(3, 3));
        // Round-robin starts at priority 0, so priority 1 (seq 2) wins.
        assert_eq!(p.start_next(|_| false).unwrap().seq, 2);
        let drained = p.drain_all();
        let seqs: Vec<u64> = drained.iter().map(|q| q.packet.seq).collect();
        assert_eq!(seqs, vec![1, 3], "priority-then-FIFO order");
        assert_eq!(p.queued_total(), 0);
        assert!(!p.is_idle(), "in-flight record untouched");
        assert_eq!(p.finish_tx().seq, 2);
    }
}
