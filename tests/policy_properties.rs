//! Property-based tests of the buffer-management policies and the
//! paper's closed-form analysis.

use dcn_net::{PortId, Priority};
use dcn_sim::{BitRate, Bytes, SimDuration, SimTime};
use dcn_switch::{AbmPolicy, BufferPolicy, DtPolicy, MmuState, Pool, QueueIndex, SwitchConfig};
use l2bm::analysis::{steady_state_occupancy, steady_state_thresholds};
use l2bm::{L2bmConfig, L2bmPolicy};
use proptest::prelude::*;

const N_PORTS: usize = 8;

fn qix(port: u16, prio: u8) -> QueueIndex {
    QueueIndex::new(PortId::new(port), Priority::new(prio))
}

/// A random but *valid* sequence of MMU operations: enqueue events with
/// matched dequeues replayed in order.
#[derive(Debug, Clone)]
struct Op {
    in_port: u16,
    out_port: u16,
    prio: u8,
    size: u64,
    headroom: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0..N_PORTS as u16,
        0..N_PORTS as u16,
        0..8u8,
        64..2_000u64,
        any::<bool>(),
    )
        .prop_map(|(in_port, out_port, prio, size, headroom)| Op {
            in_port,
            out_port,
            prio,
            size,
            headroom,
        })
}

fn apply_ops(ops: &[Op]) -> (MmuState, Vec<(QueueIndex, QueueIndex, dcn_switch::Charge)>) {
    let cfg = SwitchConfig {
        reserved_per_queue: Bytes::new(1_000),
        headroom_per_queue: Bytes::from_kb(50),
        ..SwitchConfig::default()
    };
    let mut m = MmuState::new(&cfg, vec![BitRate::from_gbps(25); N_PORTS]);
    let mut charged = Vec::new();
    for op in ops {
        let qi = qix(op.in_port, op.prio);
        let qo = qix(op.out_port, op.prio);
        let pool = if op.headroom { Pool::Headroom } else { Pool::Shared };
        let c = m.plan_charge(qi, Bytes::new(op.size), pool);
        if c.pool == Pool::Headroom && c.pooled > m.headroom_available(qi) {
            continue; // switch would have dropped it
        }
        m.charge(qi, qo, c);
        charged.push((qi, qo, c));
    }
    (m, charged)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mmu_conservation_holds_through_any_schedule(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let (mut m, charged) = apply_ops(&ops);
        m.check_conservation().expect("conservation after charges");
        // Drain everything in FIFO order.
        let mut t = SimTime::ZERO;
        for (qi, qo, c) in charged {
            t += SimDuration::from_nanos(100);
            m.discharge(t, qi, qo, c);
            m.check_conservation().expect("conservation during drain");
        }
        prop_assert_eq!(m.total_stored(), Bytes::ZERO);
        prop_assert_eq!(m.shared_used(), Bytes::ZERO);
    }

    #[test]
    fn thresholds_are_bounded_by_remaining_buffer(
        ops in prop::collection::vec(op_strategy(), 0..150),
        alpha in 0.01f64..1.0,
    ) {
        let (m, _) = apply_ops(&ops);
        let now = SimTime::from_micros(50);
        let dt = DtPolicy::new(alpha);
        let abm = AbmPolicy::new(alpha);
        let l2bm = L2bmPolicy::new(L2bmConfig::default());
        for port in 0..N_PORTS as u16 {
            for prio in 0..8u8 {
                let q = qix(port, prio);
                let t_dt = dt.pfc_threshold(&m, q, now);
                let t_abm = abm.pfc_threshold(&m, q, now);
                let t_l2bm = l2bm.pfc_threshold(&m, q, now);
                prop_assert!(t_dt <= m.shared_remaining());
                prop_assert!(t_abm <= t_dt, "ABM divides DT's allotment");
                prop_assert!(t_l2bm <= m.shared_remaining(), "w_max=1 caps at remaining");
            }
        }
    }

    #[test]
    fn l2bm_weight_respects_cap_and_positivity(
        ops in prop::collection::vec(op_strategy(), 0..100),
        cap in 0.05f64..2.0,
    ) {
        let cfg = L2bmConfig { max_weight: cap, ..L2bmConfig::default() };
        let mut policy = L2bmPolicy::new(cfg);
        let (m, charged) = apply_ops(&ops);
        // Feed the policy the same enqueue history.
        let mut t = SimTime::ZERO;
        for (qi, qo, c) in &charged {
            t += SimDuration::from_nanos(50);
            policy.on_enqueue(&m, t, *qi, *qo, c.total());
        }
        for port in 0..N_PORTS as u16 {
            let w = policy.weight(qix(port, 3), t);
            prop_assert!(w > 0.0, "weight must stay positive");
            prop_assert!(w <= cap + 1e-12, "weight {w} above cap {cap}");
        }
    }

    #[test]
    fn steady_state_thresholds_sum_to_occupancy(
        weights in prop::collection::vec(0.0f64..4.0, 1..32),
    ) {
        let b = Bytes::from_mb(4);
        let q = steady_state_occupancy(b, &weights);
        prop_assert!(q <= b);
        let sum: f64 = steady_state_thresholds(b, &weights)
            .iter()
            .map(|t| t.as_f64())
            .sum();
        // Integer rounding only: one byte per queue at most.
        prop_assert!((sum - q.as_f64()).abs() <= weights.len() as f64 + 1.0);
    }

    #[test]
    fn steady_state_occupancy_monotone_in_weights(
        weights in prop::collection::vec(0.01f64..2.0, 1..16),
        extra in 0.01f64..2.0,
    ) {
        let b = Bytes::from_mb(4);
        let q1 = steady_state_occupancy(b, &weights);
        let mut more = weights.clone();
        more.push(extra);
        let q2 = steady_state_occupancy(b, &more);
        prop_assert!(q2 >= q1, "adding an active queue cannot shrink occupancy");
    }

    #[test]
    fn dt_threshold_decreases_as_buffer_fills(
        sizes in prop::collection::vec(1_000u64..50_000, 1..40),
    ) {
        let cfg = SwitchConfig::default();
        let mut m = MmuState::new(&cfg, vec![BitRate::from_gbps(25); N_PORTS]);
        let dt = DtPolicy::new(0.5);
        let now = SimTime::ZERO;
        let mut last = dt.pfc_threshold(&m, qix(0, 3), now);
        for (i, size) in sizes.iter().enumerate() {
            let qi = qix((i % N_PORTS) as u16, 3);
            let c = m.plan_charge(qi, Bytes::new(*size), Pool::Shared);
            m.charge(qi, qix(((i + 1) % N_PORTS) as u16, 3), c);
            let t = dt.pfc_threshold(&m, qix(0, 3), now);
            prop_assert!(t <= last, "DT threshold must be non-increasing as Q grows");
            last = t;
        }
    }
}

#[test]
fn l2bm_single_active_queue_degenerates_to_dt() {
    // Deterministic edge case of Eq. 3: C = τ, so the weight is exactly α.
    let mut policy = L2bmPolicy::new(L2bmConfig::default());
    let cfg = SwitchConfig::default();
    let mut m = MmuState::new(&cfg, vec![BitRate::from_gbps(25); N_PORTS]);
    let c = m.plan_charge(qix(0, 3), Bytes::new(100_000), Pool::Shared);
    m.charge(qix(0, 3), qix(1, 3), c);
    policy.on_enqueue(&m, SimTime::ZERO, qix(0, 3), qix(1, 3), Bytes::new(100_000));
    let dt = DtPolicy::new(0.125);
    assert_eq!(
        policy.pfc_threshold(&m, qix(0, 3), SimTime::ZERO),
        dt.pfc_threshold(&m, qix(0, 3), SimTime::ZERO)
    );
}
