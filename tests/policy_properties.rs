//! Property-based tests of the buffer-management policies and the
//! paper's closed-form analysis, driven by seeded random op sequences
//! (the build is offline, so the generator is [`SimRng`] rather than
//! proptest). Each property replays many independent random cases; a
//! failure message carries the case seed for replay.

use dcn_net::{PortId, Priority};
use dcn_sim::{BitRate, Bytes, SimDuration, SimRng, SimTime};
use dcn_switch::{
    AbmPolicy, BufferPolicy, DtPolicy, MmuState, OccamyPolicy, Pool, QueueIndex, SwitchConfig,
};
use l2bm::analysis::{steady_state_occupancy, steady_state_thresholds};
use l2bm::{BShareConfig, BSharePolicy, L2bmConfig, L2bmPolicy, SojournModule};

const N_PORTS: usize = 8;
const CASES: u64 = 64;

fn qix(port: u16, prio: u8) -> QueueIndex {
    QueueIndex::new(PortId::new(port), Priority::new(prio))
}

/// A random but *valid* MMU operation: an enqueue whose matched dequeue
/// is replayed later in order.
#[derive(Debug, Clone, Copy)]
struct Op {
    in_port: u16,
    out_port: u16,
    prio: u8,
    size: u64,
    headroom: bool,
}

fn random_ops(rng: &mut SimRng, max_len: u64) -> Vec<Op> {
    let len = rng.below(max_len) + 1;
    (0..len)
        .map(|_| Op {
            in_port: rng.below(N_PORTS as u64) as u16,
            out_port: rng.below(N_PORTS as u64) as u16,
            prio: rng.below(8) as u8,
            size: 64 + rng.below(1_936),
            headroom: rng.below(2) == 1,
        })
        .collect()
}

fn apply_ops(ops: &[Op]) -> (MmuState, Vec<(QueueIndex, QueueIndex, dcn_switch::Charge)>) {
    let cfg = SwitchConfig {
        reserved_per_queue: Bytes::new(1_000),
        headroom_per_queue: Bytes::from_kb(50),
        ..SwitchConfig::default()
    };
    let mut m = MmuState::new(&cfg, vec![BitRate::from_gbps(25); N_PORTS]);
    let mut charged = Vec::new();
    for op in ops {
        let qi = qix(op.in_port, op.prio);
        let qo = qix(op.out_port, op.prio);
        let pool = if op.headroom {
            Pool::Headroom
        } else {
            Pool::Shared
        };
        let c = m.plan_charge(qi, Bytes::new(op.size), pool);
        if c.pool == Pool::Headroom && c.pooled > m.headroom_available(qi) {
            continue; // switch would have dropped it
        }
        m.charge(qi, qo, c);
        charged.push((qi, qo, c));
    }
    (m, charged)
}

#[test]
fn mmu_conservation_holds_through_any_schedule() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x1000 + case);
        let ops = random_ops(&mut rng, 200);
        let (mut m, charged) = apply_ops(&ops);
        m.check_conservation()
            .unwrap_or_else(|e| panic!("case {case}: conservation after charges: {e}"));
        // Drain everything in FIFO order.
        let mut t = SimTime::ZERO;
        for (qi, qo, c) in charged {
            t += SimDuration::from_nanos(100);
            m.discharge(t, qi, qo, c);
            m.check_conservation()
                .unwrap_or_else(|e| panic!("case {case}: conservation during drain: {e}"));
        }
        assert_eq!(m.total_stored(), Bytes::ZERO, "case {case}");
        assert_eq!(m.shared_used(), Bytes::ZERO, "case {case}");
    }
}

#[test]
fn congested_ingress_counts_match_naive_recomputation() {
    // The incremental per-priority congested counts and the active-queue
    // count must equal a full scan after every charge and discharge.
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x2000 + case);
        let ops = random_ops(&mut rng, 150);
        let cfg = SwitchConfig {
            reserved_per_queue: Bytes::new(1_000),
            headroom_per_queue: Bytes::from_kb(50),
            ..SwitchConfig::default()
        };
        let mut m = MmuState::new(&cfg, vec![BitRate::from_gbps(25); N_PORTS]);
        let mut charged = Vec::new();
        let mut t = SimTime::ZERO;
        let check = |m: &MmuState, what: &str| {
            for prio in Priority::all() {
                assert_eq!(
                    m.congested_ingress_count(prio),
                    m.congested_ingress_count_naive(prio),
                    "case {case} {what}: congested count diverged at {prio:?}"
                );
            }
            assert_eq!(
                m.active_ingress_count(),
                m.active_ingress_queues().count(),
                "case {case} {what}: active count diverged"
            );
        };
        for op in &ops {
            let qi = qix(op.in_port, op.prio);
            let qo = qix(op.out_port, op.prio);
            let pool = if op.headroom {
                Pool::Headroom
            } else {
                Pool::Shared
            };
            let c = m.plan_charge(qi, Bytes::new(op.size), pool);
            if c.pool == Pool::Headroom && c.pooled > m.headroom_available(qi) {
                continue;
            }
            m.charge(qi, qo, c);
            charged.push((qi, qo, c));
            check(&m, "after charge");
            // Randomly interleave some dequeues.
            if rng.below(3) == 0 && !charged.is_empty() {
                let (qi, qo, c) = charged.remove(0);
                t += SimDuration::from_nanos(100);
                m.discharge(t, qi, qo, c);
                check(&m, "after discharge");
            }
        }
        for (qi, qo, c) in charged {
            t += SimDuration::from_nanos(100);
            m.discharge(t, qi, qo, c);
            check(&m, "during drain");
        }
    }
}

#[test]
fn incremental_sum_active_tau_matches_naive_recomputation() {
    // Arbitrary interleavings of enqueue / dequeue / pause / resume with
    // time advancing between steps: the incrementally-maintained C must
    // track the full rescan within float tolerance, including across
    // records decaying to zero between events.
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x3000 + case);
        let cfg = SwitchConfig {
            reserved_per_queue: Bytes::new(1_000),
            headroom_per_queue: Bytes::from_kb(50),
            ..SwitchConfig::default()
        };
        let mut m = MmuState::new(&cfg, vec![BitRate::from_gbps(25); N_PORTS]);
        let mut sojourn = SojournModule::new();
        let mut queued: Vec<(QueueIndex, QueueIndex, dcn_switch::Charge)> = Vec::new();
        let mut t = SimTime::ZERO;
        let steps = 100 + rng.below(100);
        for step in 0..steps {
            // Advance time by 0–20 µs so some records fully decay.
            t += SimDuration::from_nanos(rng.below(20_000));
            match rng.below(4) {
                0 | 1 => {
                    let op = random_ops(&mut rng, 1)[0];
                    let qi = qix(op.in_port, op.prio);
                    let qo = qix(op.out_port, op.prio);
                    let c = m.plan_charge(qi, Bytes::new(op.size), Pool::Shared);
                    m.charge(qi, qo, c);
                    sojourn.on_enqueue(&m, t, qi, qo);
                    queued.push((qi, qo, c));
                }
                2 => {
                    if !queued.is_empty() {
                        let ix = rng.below(queued.len() as u64) as usize;
                        let (qi, qo, c) = queued.remove(ix);
                        m.discharge(t, qi, qo, c);
                        sojourn.on_dequeue(t, qi, qo);
                    }
                }
                _ => {
                    let qo = qix(rng.below(N_PORTS as u64) as u16, rng.below(8) as u8);
                    let paused = rng.below(2) == 1;
                    if m.set_egress_paused(qo, paused) {
                        sojourn.on_pause_changed(t, qo, paused);
                    }
                }
            }
            let inc = sojourn.sum_active_tau(t);
            let naive = sojourn.sum_active_tau_naive(t);
            assert!(
                (inc - naive).abs() < 1e-9,
                "case {case} step {step}: incremental {inc} vs naive {naive}"
            );
            // Also probe a later instant with no intervening mutation
            // (simulation time is monotone, so the clock moves there).
            let t2 = t + SimDuration::from_nanos(rng.below(30_000));
            let inc2 = sojourn.sum_active_tau(t2);
            let naive2 = sojourn.sum_active_tau_naive(t2);
            assert!(
                (inc2 - naive2).abs() < 1e-9,
                "case {case} step {step} (probe): incremental {inc2} vs naive {naive2}"
            );
            t = t2;
        }
    }
}

#[test]
fn thresholds_are_bounded_by_remaining_buffer() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x4000 + case);
        let ops = random_ops(&mut rng, 150);
        let alpha = 0.01 + rng.uniform_f64() * 0.98;
        let (m, _) = apply_ops(&ops);
        let now = SimTime::from_micros(50);
        let dt = DtPolicy::new(alpha);
        let abm = AbmPolicy::new(alpha);
        let l2bm = L2bmPolicy::new(L2bmConfig::default());
        for port in 0..N_PORTS as u16 {
            for prio in 0..8u8 {
                let q = qix(port, prio);
                let t_dt = dt.pfc_threshold(&m, q, now);
                let t_abm = abm.pfc_threshold(&m, q, now);
                let t_l2bm = l2bm.pfc_threshold(&m, q, now);
                assert!(t_dt <= m.shared_remaining(), "case {case}");
                assert!(t_abm <= t_dt, "case {case}: ABM divides DT's allotment");
                assert!(
                    t_l2bm <= m.shared_remaining(),
                    "case {case}: w_max=1 caps at remaining"
                );
            }
        }
    }
}

#[test]
fn l2bm_weight_respects_cap_and_positivity() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x5000 + case);
        let ops = random_ops(&mut rng, 100);
        let cap = 0.05 + rng.uniform_f64() * 1.95;
        let cfg = L2bmConfig {
            max_weight: cap,
            ..L2bmConfig::default()
        };
        let mut policy = L2bmPolicy::new(cfg);
        let (m, charged) = apply_ops(&ops);
        // Feed the policy the same enqueue history.
        let mut t = SimTime::ZERO;
        for (qi, qo, c) in &charged {
            t += SimDuration::from_nanos(50);
            policy.on_enqueue(&m, t, *qi, *qo, c.total());
        }
        for port in 0..N_PORTS as u16 {
            let w = policy.weight(qix(port, 3), t);
            assert!(w > 0.0, "case {case}: weight must stay positive");
            assert!(w <= cap + 1e-12, "case {case}: weight {w} above cap {cap}");
        }
    }
}

#[test]
fn steady_state_thresholds_sum_to_occupancy() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x6000 + case);
        let n = rng.below(31) + 1;
        let weights: Vec<f64> = (0..n).map(|_| rng.uniform_f64() * 4.0).collect();
        let b = Bytes::from_mb(4);
        let q = steady_state_occupancy(b, &weights);
        assert!(q <= b, "case {case}");
        let sum: f64 = steady_state_thresholds(b, &weights)
            .iter()
            .map(|t| t.as_f64())
            .sum();
        // Integer rounding only: one byte per queue at most.
        assert!(
            (sum - q.as_f64()).abs() <= weights.len() as f64 + 1.0,
            "case {case}"
        );
    }
}

#[test]
fn steady_state_occupancy_monotone_in_weights() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x7000 + case);
        let n = rng.below(15) + 1;
        let weights: Vec<f64> = (0..n).map(|_| 0.01 + rng.uniform_f64() * 1.99).collect();
        let extra = 0.01 + rng.uniform_f64() * 1.99;
        let b = Bytes::from_mb(4);
        let q1 = steady_state_occupancy(b, &weights);
        let mut more = weights.clone();
        more.push(extra);
        let q2 = steady_state_occupancy(b, &more);
        assert!(
            q2 >= q1,
            "case {case}: adding an active queue cannot shrink occupancy"
        );
    }
}

#[test]
fn dt_threshold_decreases_as_buffer_fills() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x8000 + case);
        let n = rng.below(39) + 1;
        let sizes: Vec<u64> = (0..n).map(|_| 1_000 + rng.below(49_000)).collect();
        let cfg = SwitchConfig::default();
        let mut m = MmuState::new(&cfg, vec![BitRate::from_gbps(25); N_PORTS]);
        let dt = DtPolicy::new(0.5);
        let now = SimTime::ZERO;
        let mut last = dt.pfc_threshold(&m, qix(0, 3), now);
        for (i, size) in sizes.iter().enumerate() {
            let qi = qix((i % N_PORTS) as u16, 3);
            let c = m.plan_charge(qi, Bytes::new(*size), Pool::Shared);
            m.charge(qi, qix(((i + 1) % N_PORTS) as u16, 3), c);
            let t = dt.pfc_threshold(&m, qix(0, 3), now);
            assert!(
                t <= last,
                "case {case}: DT threshold must be non-increasing as Q grows"
            );
            last = t;
        }
    }
}

#[test]
fn all_six_policy_thresholds_are_bounded() {
    // The arena-wide bound: no policy may ever grant a queue more than
    // the remaining shared pool, whatever MMU state random schedules
    // reach. (Tighter per-policy bounds are asserted elsewhere; this is
    // the battery invariant all six share.)
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x9000 + case);
        let ops = random_ops(&mut rng, 150);
        let (m, _) = apply_ops(&ops);
        let now = SimTime::from_micros(50);
        let policies: Vec<Box<dyn BufferPolicy>> = vec![
            Box::new(DtPolicy::new(0.125)),
            Box::new(DtPolicy::new(0.5)),
            Box::new(AbmPolicy::new(0.5)),
            Box::new(L2bmPolicy::new(L2bmConfig::default())),
            Box::new(OccamyPolicy::new(0.5).with_protected_priorities(&[Priority::new(3)])),
            Box::new(BSharePolicy::new(BShareConfig::default())),
        ];
        for p in &policies {
            for port in 0..N_PORTS as u16 {
                for prio in 0..8u8 {
                    let t = p.pfc_threshold(&m, qix(port, prio), now);
                    assert!(
                        t <= m.shared_remaining(),
                        "case {case}: {} grants {t:?} above remaining {:?}",
                        p.name(),
                        m.shared_remaining()
                    );
                }
            }
        }
    }
}

#[test]
fn bshare_incremental_weight_matches_naive_recomputation() {
    // BShare's admission-path weight reads the incrementally-maintained
    // aggregate delay; the reference reads the full rescan. Arbitrary
    // interleavings of enqueue / dequeue / pause / resume with time
    // advancing between steps must keep them within float tolerance.
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xA000 + case);
        let cfg = SwitchConfig {
            reserved_per_queue: Bytes::new(1_000),
            headroom_per_queue: Bytes::from_kb(50),
            ..SwitchConfig::default()
        };
        let mut m = MmuState::new(&cfg, vec![BitRate::from_gbps(25); N_PORTS]);
        let mut policy = BSharePolicy::new(BShareConfig::default());
        let mut queued: Vec<(QueueIndex, QueueIndex, dcn_switch::Charge)> = Vec::new();
        let mut t = SimTime::ZERO;
        let steps = 80 + rng.below(80);
        for step in 0..steps {
            t += SimDuration::from_nanos(rng.below(20_000));
            match rng.below(4) {
                0 | 1 => {
                    let op = random_ops(&mut rng, 1)[0];
                    let qi = qix(op.in_port, op.prio);
                    let qo = qix(op.out_port, op.prio);
                    let c = m.plan_charge(qi, Bytes::new(op.size), Pool::Shared);
                    m.charge(qi, qo, c);
                    policy.on_enqueue(&m, t, qi, qo, c.total());
                    queued.push((qi, qo, c));
                }
                2 => {
                    if !queued.is_empty() {
                        let ix = rng.below(queued.len() as u64) as usize;
                        let (qi, qo, c) = queued.remove(ix);
                        m.discharge(t, qi, qo, c);
                        policy.on_dequeue(&m, t, qi, qo, c.total());
                    }
                }
                _ => {
                    let qo = qix(rng.below(N_PORTS as u64) as u16, rng.below(8) as u8);
                    let paused = rng.below(2) == 1;
                    if m.set_egress_paused(qo, paused) {
                        policy.on_egress_pause_changed(&m, t, qo, paused);
                    }
                }
            }
            // Probe a handful of random queues at the current instant.
            for _ in 0..4 {
                let q = qix(rng.below(N_PORTS as u64) as u16, rng.below(8) as u8);
                let inc = policy.weight(q, t);
                let naive = policy.weight_naive(q, t);
                assert!(
                    (inc - naive).abs() <= 1e-9,
                    "case {case} step {step}: incremental {inc} vs naive {naive} at {q:?}"
                );
            }
        }
    }
}

/// Reference Occamy victim rule: argmax egress backlog over the flat
/// queue order (port outer, priority inner), skipping protected
/// priorities, requiring strictly more backlog than the arriving
/// packet's own (unprotected) egress queue; first-seen wins ties.
fn occamy_reference_victim(
    m: &MmuState,
    policy: &OccamyPolicy,
    q_out: QueueIndex,
) -> Option<QueueIndex> {
    let own = if policy.is_protected(q_out.priority) {
        Bytes::ZERO
    } else {
        m.egress_bytes(q_out)
    };
    let mut best: Option<(Bytes, QueueIndex)> = None;
    for port in 0..m.port_count() {
        for prio in Priority::all() {
            if policy.is_protected(prio) {
                continue;
            }
            let q = QueueIndex::new(PortId::new(port as u16), prio);
            let b = m.egress_bytes(q);
            if b > own && best.is_none_or(|(bb, _)| b > bb) {
                best = Some((b, q));
            }
        }
    }
    best.map(|(_, q)| q)
}

#[test]
fn occamy_victim_matches_reference_scan() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xB000 + case);
        let ops = random_ops(&mut rng, 150);
        let (m, _) = apply_ops(&ops);
        // Random protection mask: none, the RDMA priority, or two.
        let protected: Vec<Priority> = match rng.below(3) {
            0 => vec![],
            1 => vec![Priority::new(3)],
            _ => vec![
                Priority::new(rng.below(8) as u8),
                Priority::new(rng.below(8) as u8),
            ],
        };
        let policy = OccamyPolicy::new(0.5).with_protected_priorities(&protected);
        let now = SimTime::from_micros(10);
        for _ in 0..16 {
            let q_in = qix(rng.below(N_PORTS as u64) as u16, rng.below(8) as u8);
            let q_out = qix(rng.below(N_PORTS as u64) as u16, rng.below(8) as u8);
            let size = Bytes::new(64 + rng.below(1_936));
            assert_eq!(
                policy.plan_eviction(&m, now, q_in, q_out, size),
                occamy_reference_victim(&m, &policy, q_out),
                "case {case}: victim diverged for q_out {q_out:?} protected {protected:?}"
            );
        }
    }
}

#[test]
fn l2bm_single_active_queue_degenerates_to_dt() {
    // Deterministic edge case of Eq. 3: C = τ, so the weight is exactly α.
    let mut policy = L2bmPolicy::new(L2bmConfig::default());
    let cfg = SwitchConfig::default();
    let mut m = MmuState::new(&cfg, vec![BitRate::from_gbps(25); N_PORTS]);
    let c = m.plan_charge(qix(0, 3), Bytes::new(100_000), Pool::Shared);
    m.charge(qix(0, 3), qix(1, 3), c);
    policy.on_enqueue(&m, SimTime::ZERO, qix(0, 3), qix(1, 3), Bytes::new(100_000));
    let dt = DtPolicy::new(0.125);
    assert_eq!(
        policy.pfc_threshold(&m, qix(0, 3), SimTime::ZERO),
        dt.pfc_threshold(&m, qix(0, 3), SimTime::ZERO)
    );
}
