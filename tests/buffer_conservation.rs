//! Buffer-conservation property battery: a full [`SharedMemorySwitch`]
//! under seeded random hybrid traffic must keep the MMU's aggregate
//! counters equal to the per-queue sums after *every* charge and
//! discharge — for all six arena policies, including Occamy whose
//! preemptive evictions interleave a discharge inside the admission of
//! another packet.
//!
//! 6 policies × 16 seeded cases; each failure message carries the
//! policy and case seed for replay.

use dcn_net::{FlowId, NodeId, Packet, PortId, Priority, TrafficClass};
use dcn_sim::{BitRate, Bytes, SimDuration, SimRng, SimTime};
use dcn_switch::{
    AbmPolicy, BufferPolicy, DtPolicy, OccamyPolicy, QueueIndex, SharedMemorySwitch, SwitchConfig,
};
use l2bm::{BShareConfig, BSharePolicy, L2bmConfig, L2bmPolicy};

const N_PORTS: u16 = 4;
const CASES_PER_POLICY: u64 = 16;

type PolicyFactory = Box<dyn Fn() -> Box<dyn BufferPolicy>>;

fn policies() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("DT", Box::new(|| Box::new(DtPolicy::new(0.125)) as _)),
        ("DT2", Box::new(|| Box::new(DtPolicy::new(0.5)) as _)),
        ("ABM", Box::new(|| Box::new(AbmPolicy::new(0.5)) as _)),
        (
            "L2BM",
            Box::new(|| Box::new(L2bmPolicy::new(L2bmConfig::default())) as _),
        ),
        (
            "Occamy",
            Box::new(|| {
                Box::new(OccamyPolicy::new(0.5).with_protected_priorities(&[Priority::new(3)])) as _
            }),
        ),
        (
            "BShare",
            Box::new(|| Box::new(BSharePolicy::new(BShareConfig::default())) as _),
        ),
    ]
}

fn random_packet(rng: &mut SimRng, seq: u64) -> Packet {
    let lossless = rng.below(2) == 0;
    let (class, prio, flow) = if lossless {
        (TrafficClass::Lossless, Priority::new(3), FlowId::new(1))
    } else {
        (TrafficClass::Lossy, Priority::new(1), FlowId::new(2))
    };
    Packet::data(
        flow,
        NodeId::new(100),
        NodeId::new(101),
        prio,
        class,
        seq,
        Bytes::new(64 + rng.below(1_436)),
        Bytes::new(48),
    )
}

/// Σ per-queue bytes must equal the MMU's pool aggregates (shared pool
/// occupancy plus reserved and headroom accounting), and the built-in
/// conservation check must pass.
fn assert_conserved(sw: &SharedMemorySwitch, what: &str) {
    let mmu = sw.mmu();
    let mut sum_shared = Bytes::ZERO;
    let mut sum_headroom = Bytes::ZERO;
    let mut sum_total = Bytes::ZERO;
    for port in 0..N_PORTS {
        for prio in Priority::all() {
            let q = QueueIndex::new(PortId::new(port), prio);
            sum_shared += mmu.ingress_shared(q);
            sum_headroom += mmu.ingress_headroom(q);
            sum_total += mmu.ingress_total(q);
        }
    }
    assert_eq!(
        sum_shared,
        mmu.shared_used(),
        "{what}: Σ per-queue shared bytes != shared-pool occupancy"
    );
    assert_eq!(
        sum_headroom,
        mmu.headroom_used(),
        "{what}: Σ per-queue headroom != headroom accounting"
    );
    assert_eq!(
        sum_total,
        mmu.total_stored(),
        "{what}: Σ per-queue total != total stored"
    );
    mmu.check_conservation()
        .unwrap_or_else(|e| panic!("{what}: {e}"));
}

fn run_case(label: &str, policy: Box<dyn BufferPolicy>, seed: u64) {
    let cfg = SwitchConfig {
        // Small enough that random traffic crosses thresholds, uses
        // headroom, drops lossy packets and pauses lossless queues.
        total_buffer: Bytes::new(12_000),
        headroom_per_queue: Bytes::new(6_000),
        ..SwitchConfig::default()
    };
    let mut sw = SharedMemorySwitch::new(
        NodeId::new(0),
        cfg,
        vec![BitRate::from_gbps(25); N_PORTS as usize],
        policy,
        seed,
    );
    let mut rng = SimRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let mut busy: Vec<PortId> = Vec::new();
    let mut t = SimTime::ZERO;
    let what = |i: usize| format!("{label} seed {seed} op {i}");

    for i in 0..300usize {
        t += SimDuration::from_nanos(20 + rng.below(500));
        let drain = !busy.is_empty() && rng.below(10) < 4;
        if drain {
            let port = busy.swap_remove(rng.below(busy.len() as u64) as usize);
            let done = sw.tx_complete(t, port);
            if done.next.is_some() {
                busy.push(port);
            }
        } else {
            let in_port = PortId::new(rng.below(N_PORTS as u64) as u16);
            let out_port = PortId::new(rng.below(N_PORTS as u64) as u16);
            let r = sw.receive(t, random_packet(&mut rng, i as u64), in_port, out_port);
            if r.tx.is_some() {
                busy.push(out_port);
            }
        }
        assert_conserved(&sw, &what(i));
    }

    // Drain to empty: conservation must hold at every departure and the
    // switch must end with zero bytes stored.
    let mut i = 300usize;
    while let Some(port) = busy.pop() {
        t += SimDuration::from_nanos(400);
        let done = sw.tx_complete(t, port);
        if done.next.is_some() {
            busy.push(port);
        }
        assert_conserved(&sw, &what(i));
        i += 1;
    }
    assert_eq!(
        sw.occupancy(),
        Bytes::ZERO,
        "{label} seed {seed}: switch fully drained"
    );
}

#[test]
fn conservation_holds_for_all_policies_under_random_traffic() {
    for (label, make) in policies() {
        for case in 0..CASES_PER_POLICY {
            run_case(label, make(), 0x5EED_0000 + case);
        }
    }
}

#[test]
fn conservation_holds_across_evict_then_admit_sequences() {
    // Directed at the eviction path: queue a lossy backlog behind one
    // egress port, then push lossless arrivals until Occamy evicts to
    // admit them. Conservation is asserted after every receive (which
    // may internally discharge a victim and charge the newcomer in one
    // step), and the run must actually exercise evictions.
    let cfg = SwitchConfig {
        total_buffer: Bytes::new(12_000),
        headroom_per_queue: Bytes::new(6_000),
        ..SwitchConfig::default()
    };
    let mut sw = SharedMemorySwitch::new(
        NodeId::new(0),
        cfg,
        vec![BitRate::from_gbps(25); N_PORTS as usize],
        Box::new(OccamyPolicy::new(0.5).with_protected_priorities(&[Priority::new(3)])),
        7,
    );
    let mut t = SimTime::ZERO;
    let lossy = |seq: u64| {
        Packet::data(
            FlowId::new(2),
            NodeId::new(100),
            NodeId::new(101),
            Priority::new(1),
            TrafficClass::Lossy,
            seq,
            Bytes::new(1_200),
            Bytes::new(48),
        )
    };
    let lossless = |seq: u64| {
        Packet::data(
            FlowId::new(1),
            NodeId::new(100),
            NodeId::new(101),
            Priority::new(3),
            TrafficClass::Lossless,
            seq,
            Bytes::new(1_200),
            Bytes::new(48),
        )
    };
    // Build the lossy backlog on egress port 1 from ingress 0.
    for seq in 0..8 {
        t += SimDuration::from_nanos(50);
        sw.receive(t, lossy(seq), PortId::new(0), PortId::new(1));
        assert_conserved(&sw, &format!("lossy backlog seq {seq}"));
    }
    // Lossless pressure from another ingress port: the early arrivals
    // fit the shared pool or headroom; the later ones force evictions
    // of the queued lossy backlog (the lossy packet already serializing
    // cannot be recalled, which bounds how far this can go).
    for seq in 0..7 {
        t += SimDuration::from_nanos(50);
        sw.receive(t, lossless(seq), PortId::new(2), PortId::new(3));
        assert_conserved(&sw, &format!("lossless arrival seq {seq}"));
    }
    assert!(
        sw.drop_counters().evicted_packets > 0,
        "the sequence must exercise the eviction path"
    );
    assert_eq!(
        sw.drop_counters().lossless_packets,
        0,
        "evictions shield the lossless class"
    );
    // Drain the two transmitting egress ports; conservation at every
    // departure, empty at the end.
    for port in [1u16, 3] {
        let mut i = 0;
        loop {
            t += SimDuration::from_nanos(400);
            let done = sw.tx_complete(t, PortId::new(port));
            assert_conserved(&sw, &format!("drain port {port} step {i}"));
            i += 1;
            if done.next.is_none() {
                break;
            }
        }
    }
    assert_eq!(sw.occupancy(), Bytes::ZERO, "switch fully drained");
}
