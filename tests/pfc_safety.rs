//! PFC safety invariants over a full traced fabric run, for all six
//! policies:
//!
//! * every `PfcResume` edge is preceded by a matching `PfcPause` on the
//!   same (switch, port, priority), and pause edges never double-fire
//!   (one XOFF per episode);
//! * no lossless-class queue ever drops while its (port, priority) is
//!   paused — upstream was told to stop, so headroom must absorb the
//!   in-flight tail;
//! * the recorder's edge counts reconcile with the PFC counters.

use std::collections::BTreeMap;

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice};
use dcn_net::{FlowId, NodeId, Priority, Topology, TrafficClass};
use dcn_sim::{BitRate, Bytes, SimDuration, SimTime, TraceConfig, TraceEvent};
use dcn_switch::SwitchConfig;
use dcn_workload::FlowSpec;

/// An 8-into-1 lossless incast (which must pause) plus a 2-into-1 lossy
/// incast on another port (which drops under the small buffer), through
/// one shared-memory switch with the recorder on.
fn run_traced(policy: PolicyChoice) -> (Vec<(u64, TraceEvent)>, u64, u64, u64) {
    let topo = Topology::single_switch(12, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let cfg = FabricConfig {
        policy,
        seed: 7,
        switch: SwitchConfig {
            // Small enough to force PFC episodes on every policy.
            total_buffer: Bytes::from_kb(200),
            ..SwitchConfig::default()
        },
        sample_interval: None,
        trace: TraceConfig::enabled(),
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    for i in 0..8u64 {
        sim.add_flow(FlowSpec {
            id: FlowId::new(i),
            src: NodeId::new(i as u32),
            dst: NodeId::new(8),
            size: Bytes::new(500_000),
            start: SimTime::ZERO,
            class: TrafficClass::Lossless,
            priority: Priority::new(3),
        });
    }
    for i in 0..2u64 {
        sim.add_flow(FlowSpec {
            id: FlowId::new(100 + i),
            src: NodeId::new(9 + i as u32),
            dst: NodeId::new(11),
            size: Bytes::new(500_000),
            start: SimTime::ZERO,
            class: TrafficClass::Lossy,
            priority: Priority::new(1),
        });
    }
    assert!(sim.run_until_done(SimTime::from_secs(2)));

    let results = sim.results();
    let events = sim
        .trace()
        .with(|rec| {
            rec.records()
                .map(|r| (r.at.as_nanos(), r.event))
                .collect::<Vec<_>>()
        })
        .expect("recorder enabled");
    assert!(
        results.drops.lossy_packets > 0,
        "lossy incast must exercise drops"
    );
    (
        events,
        results.pause_frames(),
        results.pfc.resume_frames(),
        results.drops.lossless_packets,
    )
}

#[test]
fn pfc_edges_match_and_lossless_never_drops_while_paused() {
    for policy in [
        PolicyChoice::l2bm(),
        PolicyChoice::dt(),
        PolicyChoice::dt2(),
        PolicyChoice::abm(),
        PolicyChoice::occamy(),
        PolicyChoice::bshare(),
    ] {
        let label = policy.label();
        let (events, pause_frames, resume_frames, lossless_drops) = run_traced(policy);

        let mut paused: BTreeMap<(u32, u16, u8), bool> = BTreeMap::new();
        let mut pauses = 0u64;
        let mut resumes = 0u64;
        for (at, ev) in &events {
            match *ev {
                TraceEvent::PfcPause { node, port, prio } => {
                    let key = (node, port, prio);
                    assert!(
                        !paused.get(&key).copied().unwrap_or(false),
                        "{label}: double XOFF on {key:?} at {at} ns"
                    );
                    paused.insert(key, true);
                    pauses += 1;
                }
                TraceEvent::PfcResume { node, port, prio } => {
                    let key = (node, port, prio);
                    assert!(
                        paused.get(&key).copied().unwrap_or(false),
                        "{label}: XON without a preceding XOFF on {key:?} at {at} ns"
                    );
                    paused.insert(key, false);
                    resumes += 1;
                }
                TraceEvent::Drop {
                    node,
                    in_port,
                    prio,
                    lossless,
                    ..
                } if lossless => {
                    assert!(
                        !paused.get(&(node, in_port, prio)).copied().unwrap_or(false),
                        "{label}: lossless drop on paused queue \
                         (node {node}, port {in_port}, prio {prio}) at {at} ns"
                    );
                }
                _ => {}
            }
        }

        assert!(
            pauses > 0,
            "{label}: the scenario must exercise PFC (no pause edges recorded)"
        );
        assert_eq!(
            pauses, pause_frames,
            "{label}: trace pause edges != PfcCounters"
        );
        assert_eq!(
            resumes, resume_frames,
            "{label}: trace resume edges != PfcCounters"
        );
        assert!(
            resumes <= pauses,
            "{label}: more resumes than pauses ({resumes} > {pauses})"
        );
        assert_eq!(
            lossless_drops, 0,
            "{label}: auto-sized headroom must keep the lossless class lossless"
        );
    }
}
