//! Cross-crate integration tests: whole-fabric runs exercising every
//! layer (workload → transport → switch → policy → metrics) together.

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice};
use dcn_net::{ClosConfig, FlowId, NodeId, Priority, Topology, TrafficClass};
use dcn_sim::{BitRate, Bytes, SimDuration, SimRng, SimTime};
use dcn_switch::SwitchConfig;
use dcn_workload::{web_search_cdf, FlowSpec, IncastWorkload, PoissonTraffic};

fn clos_sim(policy: PolicyChoice, buffer: Bytes) -> FabricSim {
    let topo = Topology::clos(&ClosConfig::small(4));
    let cfg = FabricConfig {
        policy,
        switch: SwitchConfig {
            total_buffer: buffer,
            ..SwitchConfig::default()
        },
        ..FabricConfig::default()
    };
    FabricSim::new(topo, cfg)
}

fn mixed_workload(seed: u64) -> Vec<FlowSpec> {
    let hosts: Vec<NodeId> = (0..8).map(NodeId::new).collect();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut flows = PoissonTraffic::builder(hosts[..4].to_vec(), web_search_cdf())
        .load(0.4)
        .class(TrafficClass::Lossless, Priority::new(3))
        .build()
        .generate(SimDuration::from_millis(2), &mut rng.fork(1));
    flows.extend(
        PoissonTraffic::builder(hosts[4..].to_vec(), web_search_cdf())
            .load(0.6)
            .class(TrafficClass::Lossy, Priority::new(1))
            .first_flow_id(1 << 32)
            .build()
            .generate(SimDuration::from_millis(2), &mut rng.fork(2)),
    );
    flows
}

#[test]
fn hybrid_run_completes_without_lossless_drops_under_all_policies() {
    for policy in [
        PolicyChoice::dt(),
        PolicyChoice::dt2(),
        PolicyChoice::abm(),
        PolicyChoice::l2bm(),
    ] {
        let mut sim = clos_sim(policy, Bytes::from_kb(250));
        sim.add_flows(mixed_workload(11));
        let done = sim.run_until_done(SimTime::from_secs(2));
        let r = sim.results();
        assert!(
            done,
            "{}: {} flows unfinished",
            policy.label(),
            r.unfinished_flows
        );
        assert_eq!(
            r.drops.lossless_packets,
            0,
            "{}: lossless packets were dropped",
            policy.label()
        );
        assert!(r.fct.len() > 10, "{}: too few flows", policy.label());
    }
}

#[test]
fn slowdowns_are_physical() {
    let mut sim = clos_sim(PolicyChoice::l2bm(), Bytes::from_kb(500));
    sim.add_flows(mixed_workload(13));
    sim.run_until_done(SimTime::from_secs(2));
    let r = sim.results();
    for rec in r.fct.records() {
        let s = rec.slowdown();
        assert!(s >= 1.0, "{}: slowdown {s} below 1", rec.flow);
        assert!(s.is_finite(), "{}: non-finite slowdown", rec.flow);
        assert!(rec.finish >= rec.start);
    }
}

#[test]
fn identical_seeds_reproduce_bitwise_metrics() {
    let run = |seed| {
        let mut sim = clos_sim(PolicyChoice::l2bm(), Bytes::from_kb(250));
        sim.add_flows(mixed_workload(seed));
        sim.run_until_done(SimTime::from_secs(2));
        let r = sim.results();
        (
            r.events_processed,
            r.pause_frames(),
            r.drops.lossy_packets,
            r.fct
                .records()
                .iter()
                .map(|x| (x.flow, x.finish))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(5), run(5));
    // And a different seed genuinely changes the run.
    assert_ne!(run(5).3, run(6).3);
}

#[test]
fn incast_queries_complete_and_fan_in_is_lossless() {
    let topo = Topology::clos(&ClosConfig::small(4));
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let workload = IncastWorkload::new(
        hosts[..4].to_vec(),
        3,
        Bytes::from_kb(120),
        SimDuration::from_micros(500),
    );
    let mut rng = SimRng::seed_from_u64(3);
    let queries = workload.generate(SimDuration::from_millis(3), &mut rng);
    assert!(!queries.is_empty());

    let mut sim = FabricSim::new(
        topo,
        FabricConfig {
            policy: PolicyChoice::l2bm(),
            switch: SwitchConfig {
                total_buffer: Bytes::from_kb(250),
                ..SwitchConfig::default()
            },
            ..FabricConfig::default()
        },
    );
    for q in &queries {
        sim.add_flows(q.flows.iter().copied());
    }
    assert!(sim.run_until_done(SimTime::from_secs(2)));
    let r = sim.results();
    assert_eq!(r.drops.lossless_packets, 0);
    // Every query's flows completed.
    let finished: std::collections::HashSet<FlowId> =
        r.fct.records().iter().map(|x| x.flow).collect();
    for q in &queries {
        for f in q.flow_ids() {
            assert!(finished.contains(&f), "query {} flow {f} missing", q.id);
        }
    }
}

#[test]
fn pfc_backpressure_reaches_hosts_under_pressure() {
    // Small buffer and a hard 7-into-1 lossless incast: DT(0.125) must
    // pause, and pausing must not lose anything.
    let topo = Topology::single_switch(8, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let mut sim = FabricSim::new(
        topo,
        FabricConfig {
            policy: PolicyChoice::dt(),
            switch: SwitchConfig {
                total_buffer: Bytes::from_kb(100),
                ..SwitchConfig::default()
            },
            sample_interval: None,
            ..FabricConfig::default()
        },
    );
    for i in 0..7u64 {
        sim.add_flow(FlowSpec {
            id: FlowId::new(i),
            src: NodeId::new(i as u32),
            dst: NodeId::new(7),
            size: Bytes::new(400_000),
            start: SimTime::ZERO,
            class: TrafficClass::Lossless,
            priority: Priority::new(3),
        });
    }
    assert!(sim.run_until_done(SimTime::from_secs(2)));
    let r = sim.results();
    assert!(r.pause_frames() > 0, "pressure must trigger PFC");
    assert_eq!(
        r.pfc.resume_frames(),
        r.pause_frames(),
        "every XOFF gets an XON"
    );
    assert_eq!(r.drops.lossless_packets, 0);
}

#[test]
fn l2bm_pauses_no_more_than_dt_under_tcp_hogging() {
    // The paper's core claim, as an invariant at test scale: with TCP
    // hogging the shared buffer, L2BM emits no more pause frames than
    // DT(0.125).
    let pauses = |policy| {
        let mut sim = clos_sim(policy, Bytes::from_kb(150));
        sim.add_flows(mixed_workload(21));
        sim.run_until_done(SimTime::from_secs(2));
        sim.results().pause_frames()
    };
    let dt = pauses(PolicyChoice::dt());
    let l2bm = pauses(PolicyChoice::l2bm());
    assert!(
        l2bm <= dt,
        "L2BM produced {l2bm} pauses, DT {dt} — ordering violated"
    );
}

#[test]
fn tcp_recovers_from_forced_drops() {
    // A tiny buffer forces lossy drops; DCTCP must still deliver
    // everything via retransmission.
    let mut sim = clos_sim(PolicyChoice::dt(), Bytes::from_kb(60));
    let hosts: Vec<NodeId> = (0..8).map(NodeId::new).collect();
    for (i, chunk) in hosts[..6].chunks(2).enumerate() {
        for (j, &src) in chunk.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId::new((i * 2 + j) as u64),
                src,
                dst: hosts[7],
                size: Bytes::new(300_000),
                start: SimTime::ZERO,
                class: TrafficClass::Lossy,
                priority: Priority::new(1),
            });
        }
    }
    assert!(sim.run_until_done(SimTime::from_secs(5)));
    let r = sim.results();
    assert!(r.drops.lossy_packets > 0, "test needs actual drops");
    assert_eq!(r.fct.len(), 6, "all flows still complete");
}
