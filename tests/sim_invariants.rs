//! Seeded-random property tests of the simulation substrate: event
//! ordering, statistics, workload generators and queue discipline.
//!
//! Each property runs `CASES` independently seeded cases through the
//! deterministic `SimRng`, so failures are reproducible from the case
//! number in the panic message.

use dcn_metrics::{percentile, Cdf, ErrorBarStats};
use dcn_net::{FlowId, NodeId, Packet, PortId, Priority, TrafficClass};
use dcn_sim::{BitRate, Bytes, EmpiricalCdf, EventQueue, SimDuration, SimRng, SimTime};
use dcn_switch::{Charge, EgressPort, Pool, QueuedPacket};
use dcn_workload::web_search_cdf;

const CASES: u64 = 64;

fn random_times(rng: &mut SimRng, max_len: u64) -> Vec<u64> {
    let n = 1 + rng.below(max_len);
    (0..n).map(|_| rng.below(1_000_000)).collect()
}

#[test]
fn event_queue_pops_in_nondecreasing_time_order() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x9000 + case);
        let times = random_times(&mut rng, 500);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last, "case {case}: pops must be time-ordered");
            last = at;
            seen += 1;
        }
        assert_eq!(seen, times.len(), "case {case}: every event pops once");
    }
}

#[test]
fn event_queue_equal_times_preserve_insertion_order() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xa000 + case);
        let n = 1 + rng.below(200) as usize;
        let t = rng.below(1_000);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            (0..n).collect::<Vec<_>>(),
            "case {case}: equal times must pop FIFO"
        );
    }
}

#[test]
fn percentile_is_monotone_and_bounded() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xb000 + case);
        let n = 1 + rng.below(300) as usize;
        let mut samples: Vec<f64> = (0..n).map(|_| (rng.uniform_f64() - 0.5) * 2e6).collect();
        let p1 = rng.uniform_f64();
        let p2 = rng.uniform_f64();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&samples, lo).expect("non-empty");
        let b = percentile(&samples, hi).expect("non-empty");
        assert!(a <= b, "case {case}: quantiles must be monotone");
        samples.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        assert!(
            a >= samples[0] && b <= *samples.last().expect("non-empty"),
            "case {case}: quantiles stay inside the sample range"
        );
    }
}

#[test]
fn cdf_fraction_below_is_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xc000 + case);
        let n = 1 + rng.below(200) as usize;
        let samples: Vec<f64> = (0..n).map(|_| rng.uniform_f64() * 1e6).collect();
        let mut cdf: Cdf = samples.into_iter().collect();
        let x1 = rng.uniform_f64() * 1e6;
        let x2 = rng.uniform_f64() * 1e6;
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        assert!(
            cdf.fraction_below(lo) <= cdf.fraction_below(hi),
            "case {case}: CDF must be monotone"
        );
        assert!(
            cdf.fraction_below(f64::MAX) == 1.0,
            "case {case}: CDF reaches 1"
        );
    }
}

#[test]
fn error_bars_are_internally_ordered() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xd000 + case);
        let n = 1 + rng.below(200) as usize;
        let samples: Vec<f64> = (0..n).map(|_| (rng.uniform_f64() - 0.5) * 2e3).collect();
        let s = ErrorBarStats::from_samples(&samples).expect("non-empty");
        assert!(s.min <= s.q25, "case {case}");
        assert!(s.q25 <= s.median, "case {case}");
        assert!(s.median <= s.q75, "case {case}");
        assert!(s.q75 <= s.max, "case {case}");
        assert!(
            s.whisker_lo >= s.min && s.whisker_lo <= s.q25,
            "case {case}"
        );
        assert!(
            s.whisker_hi <= s.max && s.whisker_hi >= s.q75,
            "case {case}"
        );
        assert!(s.std_dev >= 0.0, "case {case}");
    }
}

#[test]
fn empirical_cdf_quantile_monotone() {
    let cdf = web_search_cdf();
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xe000 + case);
        let p1 = rng.uniform_f64();
        let p2 = rng.uniform_f64();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        assert!(
            cdf.quantile(lo) <= cdf.quantile(hi),
            "case {case}: workload CDF quantiles must be monotone"
        );
    }
}

#[test]
fn empirical_cdf_samples_stay_in_support() {
    let cdf = EmpiricalCdf::new(vec![(100, 0.0), (5_000, 0.7), (90_000, 1.0)]).expect("valid");
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xf000 + case);
        for _ in 0..200 {
            let v = cdf.sample(&mut rng);
            assert!(
                (100..=90_000).contains(&v),
                "case {case}: sample {v} escaped the CDF support"
            );
        }
    }
}

#[test]
fn rate_tx_time_scales_linearly() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x1_0000 + case);
        let gbps = 1 + rng.below(399);
        let bytes = 1 + rng.below(10_000_000);
        let r = BitRate::from_gbps(gbps);
        let one = r.tx_time(Bytes::new(bytes));
        let two = r.tx_time(Bytes::new(bytes * 2));
        // Ceil rounding allows at most 1 ns of sub-linearity.
        assert!(
            two.as_nanos() <= one.as_nanos() * 2,
            "case {case}: tx_time super-linear"
        );
        assert!(
            two.as_nanos() + 1 >= one.as_nanos() * 2 - 1,
            "case {case}: tx_time sub-linear beyond rounding"
        );
    }
}

#[test]
fn egress_port_is_work_conserving_and_fifo() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x2_0000 + case);
        let n = 1 + rng.below(100) as usize;
        let prios: Vec<u8> = (0..n).map(|_| rng.below(8) as u8).collect();
        let mut port = EgressPort::new();
        for (i, &p) in prios.iter().enumerate() {
            port.enqueue(QueuedPacket {
                packet: Packet::data(
                    FlowId::new(i as u64),
                    NodeId::new(0),
                    NodeId::new(1),
                    Priority::new(p),
                    TrafficClass::Lossless,
                    i as u64,
                    Bytes::new(1_000),
                    Bytes::new(48),
                ),
                in_port: PortId::new(0),
                charge: Charge {
                    reserved: Bytes::ZERO,
                    pooled: Bytes::new(1_048),
                    pool: Pool::Shared,
                },
            });
        }
        // Drain with nothing paused: must serve every packet exactly
        // once, FIFO within each priority.
        let mut served: Vec<(u8, u64)> = Vec::new();
        while port.start_next(|_| false).is_some() {
            let departed = port.finish_tx();
            served.push((departed.priority.as_u8(), departed.seq));
        }
        assert_eq!(served.len(), prios.len(), "case {case}: work conservation");
        for p in 0..8u8 {
            let per_prio: Vec<u64> = served
                .iter()
                .filter(|(pp, _)| *pp == p)
                .map(|&(_, s)| s)
                .collect();
            let mut sorted = per_prio.clone();
            sorted.sort_unstable();
            assert_eq!(per_prio, sorted, "case {case}: FIFO within priority {p}");
        }
    }
}

#[test]
fn exponential_interarrivals_are_positive_and_finite() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x3_0000 + case);
        let mean_us = 1 + rng.below(10_000);
        let mean = SimDuration::from_micros(mean_us);
        for _ in 0..100 {
            let d = rng.exponential(mean);
            assert!(
                d < SimDuration::from_secs(60),
                "case {case}: no absurd gaps"
            );
        }
    }
}
