//! Property-based tests of the simulation substrate: event ordering,
//! statistics, workload generators and queue discipline.

use dcn_metrics::{percentile, Cdf, ErrorBarStats};
use dcn_net::{FlowId, NodeId, Packet, PortId, Priority, TrafficClass};
use dcn_sim::{Bytes, EmpiricalCdf, EventQueue, SimDuration, SimRng, SimTime};
use dcn_switch::{Charge, EgressPort, Pool, QueuedPacket};
use dcn_workload::web_search_cdf;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(
        times in prop::collection::vec(0u64..1_000_000, 1..500),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            seen += 1;
        }
        prop_assert_eq!(seen, times.len());
    }

    #[test]
    fn event_queue_equal_times_preserve_insertion_order(
        n in 1usize..200,
        t in 0u64..1_000,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        mut samples in prop::collection::vec(-1e6f64..1e6, 1..300),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&samples, lo).expect("non-empty");
        let b = percentile(&samples, hi).expect("non-empty");
        prop_assert!(a <= b, "quantiles must be monotone");
        samples.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        prop_assert!(a >= samples[0] && b <= *samples.last().expect("non-empty"));
    }

    #[test]
    fn cdf_fraction_below_is_monotone(
        samples in prop::collection::vec(0.0f64..1e6, 1..200),
        x1 in 0.0f64..1e6,
        x2 in 0.0f64..1e6,
    ) {
        let mut cdf: Cdf = samples.into_iter().collect();
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(cdf.fraction_below(lo) <= cdf.fraction_below(hi));
        prop_assert!(cdf.fraction_below(f64::MAX) == 1.0);
    }

    #[test]
    fn error_bars_are_internally_ordered(
        samples in prop::collection::vec(-1e3f64..1e3, 1..200),
    ) {
        let s = ErrorBarStats::from_samples(&samples).expect("non-empty");
        prop_assert!(s.min <= s.q25);
        prop_assert!(s.q25 <= s.median);
        prop_assert!(s.median <= s.q75);
        prop_assert!(s.q75 <= s.max);
        prop_assert!(s.whisker_lo >= s.min && s.whisker_lo <= s.q25);
        prop_assert!(s.whisker_hi <= s.max && s.whisker_hi >= s.q75);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn empirical_cdf_quantile_monotone(
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let cdf = web_search_cdf();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi));
    }

    #[test]
    fn empirical_cdf_samples_stay_in_support(seed in any::<u64>()) {
        let cdf = EmpiricalCdf::new(vec![(100, 0.0), (5_000, 0.7), (90_000, 1.0)]).expect("valid");
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..200 {
            let v = cdf.sample(&mut rng);
            prop_assert!((100..=90_000).contains(&v));
        }
    }

    #[test]
    fn rate_tx_time_scales_linearly(
        gbps in 1u64..400,
        bytes in 1u64..10_000_000,
    ) {
        use dcn_sim::BitRate;
        let r = BitRate::from_gbps(gbps);
        let one = r.tx_time(Bytes::new(bytes));
        let two = r.tx_time(Bytes::new(bytes * 2));
        // Ceil rounding allows at most 1 ns of sub-linearity.
        prop_assert!(two.as_nanos() <= one.as_nanos() * 2);
        prop_assert!(two.as_nanos() + 1 >= one.as_nanos() * 2 - 1);
    }

    #[test]
    fn egress_port_is_work_conserving_and_fifo(
        prios in prop::collection::vec(0u8..8, 1..100),
    ) {
        let mut port = EgressPort::new();
        for (i, &p) in prios.iter().enumerate() {
            port.enqueue(QueuedPacket {
                packet: Packet::data(
                    FlowId::new(i as u64),
                    NodeId::new(0),
                    NodeId::new(1),
                    Priority::new(p),
                    TrafficClass::Lossless,
                    i as u64,
                    Bytes::new(1_000),
                    Bytes::new(48),
                ),
                in_port: PortId::new(0),
                charge: Charge {
                    reserved: Bytes::ZERO,
                    pooled: Bytes::new(1_048),
                    pool: Pool::Shared,
                },
            });
        }
        // Drain with nothing paused: must serve every packet exactly
        // once, FIFO within each priority.
        let mut served: Vec<(u8, u64)> = Vec::new();
        while port.start_next(|_| false).is_some() {
            let qp = port.finish_tx();
            served.push((qp.packet.priority.as_u8(), qp.packet.seq));
        }
        prop_assert_eq!(served.len(), prios.len(), "work conservation");
        for p in 0..8u8 {
            let per_prio: Vec<u64> = served
                .iter()
                .filter(|(pp, _)| *pp == p)
                .map(|&(_, s)| s)
                .collect();
            let mut sorted = per_prio.clone();
            sorted.sort_unstable();
            prop_assert_eq!(per_prio, sorted, "FIFO within priority {}", p);
        }
    }

    #[test]
    fn exponential_interarrivals_are_positive_and_finite(
        seed in any::<u64>(),
        mean_us in 1u64..10_000,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mean = SimDuration::from_micros(mean_us);
        for _ in 0..100 {
            let d = rng.exponential(mean);
            prop_assert!(d < SimDuration::from_secs(60), "no absurd gaps");
        }
    }
}
