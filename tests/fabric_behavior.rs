//! Behavioural integration tests for the fabric: hand-checked FCT
//! arithmetic, the ECN→DCTCP control loop, PFC chains across multiple
//! switch hops, and partial-run semantics.

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice};
use dcn_net::{ClosConfig, FlowId, NodeId, Priority, Topology, TrafficClass};
use dcn_sim::{BitRate, Bytes, SimDuration, SimRng, SimTime};
use dcn_switch::{EcnConfig, SwitchConfig};
use dcn_workload::{web_search_cdf, FlowSpec, PoissonTraffic};

fn flow(id: u64, src: u32, dst: u32, size: u64, class: TrafficClass) -> FlowSpec {
    FlowSpec {
        id: FlowId::new(id),
        src: NodeId::new(src),
        dst: NodeId::new(dst),
        size: Bytes::new(size),
        start: SimTime::ZERO,
        class,
        priority: match class {
            TrafficClass::Lossless | TrafficClass::LossyRdma => Priority::new(3),
            TrafficClass::Lossy => Priority::new(1),
        },
    }
}

#[test]
fn single_rdma_packet_fct_matches_hand_computation() {
    // host -> switch -> host at 25 Gbps, 1 µs propagation each hop.
    // One 1000 B payload packet = 1048 B wire:
    //   serialize at host: 336 ns (ceil of 1048*8/25)
    //   propagate:        1000 ns
    //   serialize at sw:   336 ns
    //   propagate:        1000 ns          => 2672 ns total
    let topo = Topology::single_switch(2, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let mut sim = FabricSim::new(
        topo,
        FabricConfig {
            sample_interval: None,
            ..FabricConfig::default()
        },
    );
    sim.add_flow(flow(1, 0, 1, 1_000, TrafficClass::Lossless));
    assert!(sim.run_until_done(SimTime::from_millis(1)));
    let r = sim.results();
    let rec = r.fct.records()[0];
    assert_eq!(rec.fct(), SimDuration::from_nanos(2_672));
    // The ideal-FCT model must agree exactly for a single packet, so
    // slowdown is 1.0.
    assert_eq!(rec.slowdown(), 1.0);
}

#[test]
fn rdma_flow_throughput_is_line_rate_when_alone() {
    // 1 MB alone on an idle path must complete at ≈ link rate: ideal
    // transfer of 1048×1000 wire bytes at 25 Gbps is ~335 µs.
    let topo = Topology::single_switch(2, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let mut sim = FabricSim::new(
        topo,
        FabricConfig {
            sample_interval: None,
            ..FabricConfig::default()
        },
    );
    sim.add_flow(flow(1, 0, 1, 1_000_000, TrafficClass::Lossless));
    assert!(sim.run_until_done(SimTime::from_millis(10)));
    let rec = sim.results().fct.records()[0];
    let fct = rec.fct().as_secs_f64();
    assert!((3.3e-4..3.6e-4).contains(&fct), "fct {fct}");
    assert!(rec.slowdown() < 1.05, "slowdown {}", rec.slowdown());
}

#[test]
fn dctcp_backs_off_under_aggressive_marking() {
    // Force marking from the first byte: two competing TCP flows into
    // one receiver must still complete, with ECN (not loss) doing the
    // regulation — no drops expected with a huge buffer.
    let topo = Topology::single_switch(3, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let cfg = FabricConfig {
        switch: SwitchConfig {
            total_buffer: Bytes::from_mb(16),
            ecn_lossy: EcnConfig::step(Bytes::new(3_000)),
            ..SwitchConfig::default()
        },
        sample_interval: None,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    sim.add_flow(flow(1, 0, 2, 500_000, TrafficClass::Lossy));
    sim.add_flow(flow(2, 1, 2, 500_000, TrafficClass::Lossy));
    assert!(sim.run_until_done(SimTime::from_secs(1)));
    let r = sim.results();
    assert_eq!(r.drops.lossy_packets, 0, "ECN should prevent drops here");
    assert_eq!(r.fct.len(), 2);
    // Sharing a 25G link: each flow takes at least ~2x its solo time.
    for rec in r.fct.records() {
        assert!(
            rec.slowdown() > 1.5,
            "flow {} slowdown {}",
            rec.flow,
            rec.slowdown()
        );
    }
}

#[test]
fn pfc_chain_propagates_through_the_fabric_core() {
    // Cross-rack lossless incast with a small buffer: pauses must
    // appear not only at the destination ToR but also reach upstream
    // (aggregation) switches or hosts — i.e. the chain works across
    // hops without losing packets.
    let topo = Topology::clos(&ClosConfig::small(4));
    let cfg = FabricConfig {
        policy: PolicyChoice::dt(),
        switch: SwitchConfig {
            total_buffer: Bytes::from_kb(64),
            ..SwitchConfig::default()
        },
        sample_interval: None,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    // Hosts 4..8 are rack 1; they all blast host 0 in rack 0.
    for (i, src) in (4..8).enumerate() {
        sim.add_flow(flow(i as u64, src, 0, 400_000, TrafficClass::Lossless));
    }
    assert!(sim.run_until_done(SimTime::from_secs(2)));
    let r = sim.results();
    assert_eq!(r.drops.lossless_packets, 0);
    assert!(r.pause_frames() > 0);
    // More than one switch participated in flow control.
    let pausing_switches = r
        .pfc_by_switch
        .values()
        .filter(|c| c.pause_frames() > 0)
        .count();
    assert!(
        pausing_switches >= 1,
        "at least the destination ToR must pause"
    );
    // All four flows complete despite the back-pressure.
    assert_eq!(r.fct.len(), 4);
}

#[test]
fn run_until_is_resumable() {
    let topo = Topology::single_switch(2, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let mut sim = FabricSim::new(
        topo,
        FabricConfig {
            sample_interval: None,
            ..FabricConfig::default()
        },
    );
    sim.add_flow(flow(1, 0, 1, 1_000_000, TrafficClass::Lossless));
    // Stop in the middle of the transfer...
    sim.run_until(SimTime::from_micros(100));
    assert_eq!(sim.results().fct.len(), 0, "not finished yet");
    assert_eq!(sim.results().unfinished_flows, 1);
    // ...and resume to completion.
    assert!(sim.run_until_done(SimTime::from_millis(10)));
    assert_eq!(sim.results().fct.len(), 1);
    assert_eq!(sim.results().unfinished_flows, 0);
}

#[test]
fn lossy_and_lossless_classes_are_isolated_by_priority_queues() {
    // A TCP elephant and an RDMA mouse to the same receiver: the mouse
    // must not wait behind the elephant's queue (separate priority
    // queues + round-robin), so its slowdown stays moderate.
    let topo = Topology::single_switch(3, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let mut sim = FabricSim::new(
        topo,
        FabricConfig {
            sample_interval: None,
            ..FabricConfig::default()
        },
    );
    sim.add_flow(flow(1, 0, 2, 5_000_000, TrafficClass::Lossy)); // elephant
    sim.add_flow(flow(2, 1, 2, 20_000, TrafficClass::Lossless)); // mouse
    assert!(sim.run_until_done(SimTime::from_secs(1)));
    let r = sim.results();
    let mouse = r
        .fct
        .records()
        .iter()
        .find(|x| x.flow == FlowId::new(2))
        .expect("mouse completed");
    // Round-robin halves its bandwidth at worst; far from the ~100x it
    // would suffer in a shared FIFO behind 5 MB.
    assert!(
        mouse.slowdown() < 5.0,
        "mouse slowdown {}",
        mouse.slowdown()
    );
}

/// One fixed-seed hybrid run on a small Clos under L2BM, reduced to a
/// digest of `RunResults`. The golden values below were re-captured
/// after the NewReno recovery fixes (partial-ACK retransmit, RTO
/// backoff): Σ FCT dropped from 38,185,641 ns to 24,797,131 ns because
/// multi-loss windows now repair via fast recovery instead of stalling
/// until RTO, drops rose 217 → 286 (retransmits arrive while queues are
/// still congested instead of after a 2 ms idle wait), and events fell
/// 412,733 → 387,544 (fewer go-back-N full-window resends). Pause
/// frames are unchanged at 10 — the lossless path is untouched.
fn hybrid_golden_digest() -> (usize, u64, u64, u64, u64, usize) {
    let topo = Topology::clos(&ClosConfig::small(4));
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let (rdma_hosts, tcp_hosts): (Vec<NodeId>, Vec<NodeId>) =
        hosts.iter().partition(|h| h.index() % 2 == 0);
    let mut rng = SimRng::seed_from_u64(42);
    let window = SimDuration::from_millis(2);

    let rdma = PoissonTraffic::builder(rdma_hosts.clone(), web_search_cdf())
        .load(0.4)
        .link_rate(BitRate::from_gbps(25))
        .class(TrafficClass::Lossless, Priority::new(3))
        .dests(rdma_hosts)
        .build();
    let tcp = PoissonTraffic::builder(tcp_hosts.clone(), web_search_cdf())
        .load(0.8)
        .link_rate(BitRate::from_gbps(25))
        .class(TrafficClass::Lossy, Priority::new(1))
        .dests(tcp_hosts)
        .first_flow_id(1 << 40)
        .build();

    let cfg = FabricConfig {
        policy: PolicyChoice::l2bm(),
        seed: 42,
        // Small enough that the lossless class has to pause under this
        // load, so the digest covers the PFC machinery too.
        switch: SwitchConfig {
            total_buffer: Bytes::from_kb(96),
            ..SwitchConfig::default()
        },
        sample_interval: None,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    sim.add_flows(rdma.generate(window, &mut rng.fork(1)));
    sim.add_flows(tcp.generate(window, &mut rng.fork(2)));
    sim.run_until_done(SimTime::ZERO + window + SimDuration::from_millis(20));

    let r = sim.results();
    assert_eq!(
        r.queue.past_clamps, 0,
        "a correct model never schedules into the past"
    );
    let fct_nanos: u64 = r.fct.records().iter().map(|rec| rec.fct().as_nanos()).sum();
    (
        r.fct.len(),
        fct_nanos,
        r.pause_frames(),
        r.drops.lossless_packets + r.drops.lossy_packets,
        r.events_processed,
        r.unfinished_flows,
    )
}

#[test]
fn fixed_seed_run_matches_golden_results() {
    let digest = hybrid_golden_digest();
    assert_eq!(
        digest,
        (17, 24_797_131, 10, 286, 387_544, 0),
        "fixed-seed RunResults digest changed: (completed flows, Σ fct ns, \
         pause frames, drops, events processed, unfinished flows)"
    );
}

#[test]
fn occupancy_sampling_interval_is_respected() {
    let topo = Topology::single_switch(2, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let mut sim = FabricSim::new(
        topo,
        FabricConfig {
            sample_interval: Some(SimDuration::from_micros(250)),
            ..FabricConfig::default()
        },
    );
    sim.add_flow(flow(1, 0, 1, 100_000, TrafficClass::Lossless));
    sim.run_until(SimTime::from_millis(2));
    let r = sim.results();
    let series = r.occupancy.values().next().expect("sampled");
    // 2 ms / 250 µs = 8 samples expected (first at t=250 µs).
    assert!((7..=8).contains(&series.len()), "{} samples", series.len());
    for w in series.samples().windows(2) {
        assert_eq!(
            (w[1].0 - w[0].0),
            SimDuration::from_micros(250),
            "uniform sampling grid"
        );
    }
}
