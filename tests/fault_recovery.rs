//! Fault-injection recovery tests: link flaps, stuck PFC pauses and
//! routing blackouts must be survivable, counted, and deterministic.

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice, RunResults};
use dcn_net::{ClosConfig, FlowId, LinkId, NodeId, NodeKind, Priority, Topology, TrafficClass};
use dcn_sim::{
    par_map, BitRate, Bytes, FaultEvent, FaultSchedule, SimDuration, SimRng, SimTime, TraceConfig,
    TraceEvent,
};
use dcn_switch::SwitchConfig;
use dcn_workload::{web_search_cdf, FlowSpec, PoissonTraffic};

fn flow(id: u64, src: u32, dst: u32, size: u64, class: TrafficClass) -> FlowSpec {
    FlowSpec {
        id: FlowId::new(id),
        src: NodeId::new(src),
        dst: NodeId::new(dst),
        size: Bytes::new(size),
        start: SimTime::ZERO,
        class,
        priority: match class {
            TrafficClass::Lossless | TrafficClass::LossyRdma => Priority::new(3),
            TrafficClass::Lossy => Priority::new(1),
        },
    }
}

/// The first inter-switch link of a clos fabric (a ToR uplink).
fn first_uplink(topo: &Topology) -> LinkId {
    topo.links()
        .iter()
        .find(|l| {
            topo.node(l.a.node).kind == NodeKind::Switch
                && topo.node(l.b.node).kind == NodeKind::Switch
        })
        .expect("clos has switch-switch links")
        .id
}

/// Every uplink of `tor` (links to other switches).
fn uplinks_of(topo: &Topology, tor: NodeId) -> Vec<LinkId> {
    topo.links()
        .iter()
        .filter(|l| {
            (l.a.node == tor || l.b.node == tor)
                && topo.node(l.a.node).kind == NodeKind::Switch
                && topo.node(l.b.node).kind == NodeKind::Switch
        })
        .map(|l| l.id)
        .collect()
}

/// Cross-rack TCP transfers through a 1 ms uplink flap: ECMP reroutes
/// around the dead link, RTO recovers what was lost on the wire, and
/// every flow still completes.
fn run_flap(seed: u64) -> RunResults {
    let topo = Topology::clos(&ClosConfig::small(4));
    let uplink = first_uplink(&topo);
    let mut faults = FaultSchedule::none();
    // Down 100 µs into the transfers, back up 1 ms later.
    faults.link_flap(
        uplink.index() as u32,
        SimTime::from_micros(100),
        SimDuration::from_millis(1),
    );
    let cfg = FabricConfig {
        policy: PolicyChoice::l2bm(),
        seed,
        sample_interval: None,
        faults,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    // Hosts 0–3 are rack 0, hosts 4–7 rack 1 in ClosConfig::small(4):
    // all flows cross the flapped tier.
    for i in 0..4u32 {
        sim.add_flow(flow(
            u64::from(i) + 1,
            i,
            i + 4,
            200_000,
            TrafficClass::Lossy,
        ));
    }
    assert!(
        sim.run_until_done(SimTime::from_millis(80)),
        "flows must finish despite the flap (seed {seed})"
    );
    sim.results()
}

#[test]
fn link_flap_mid_transfer_every_tcp_flow_completes() {
    let r = run_flap(42);
    assert_eq!(r.unfinished_flows, 0);
    assert_eq!(r.fct.len(), 4, "all four transfers complete");
    assert_eq!(r.drops.lossless_packets, 0, "no lossless traffic to harm");
}

#[test]
fn link_flap_digest_is_jobs_invariant() {
    let seeds: Vec<u64> = vec![1, 2, 3, 42];
    let digests = |jobs: usize| -> Vec<u64> { par_map(jobs, &seeds, |&s| run_flap(s).digest()) };
    assert_eq!(
        digests(1),
        digests(8),
        "post-recovery digest must not depend on worker count"
    );
}

/// An uplink blackout carried by lossy RDMA: every uplink of the source
/// rack's ToR flaps 20 µs into the transfers (mid-window — IRN's full-
/// window start finishes a clean 200 KB run in ~70 µs, so a later fault
/// would miss it). In-flight packets die as NoRoute/LinkDown drops; IRN
/// recovers them via NACK/go-back-N, or the backed-off RTO when the
/// feedback itself was lost, and completes — with zero PFC frames.
fn run_irn_flap(seed: u64) -> RunResults {
    let topo = Topology::clos(&ClosConfig::small(4));
    let tor = topo
        .host_uplink_switch(NodeId::new(0))
        .expect("host 0 has a ToR");
    let mut faults = FaultSchedule::none();
    for l in uplinks_of(&topo, tor) {
        faults.link_flap(
            l.index() as u32,
            SimTime::from_micros(20),
            SimDuration::from_millis(1),
        );
    }
    let cfg = FabricConfig {
        policy: PolicyChoice::l2bm(),
        rdma_transport: dcn_fabric::RdmaTransport::Irn,
        seed,
        sample_interval: None,
        trace: TraceConfig::enabled(),
        faults,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    for i in 0..4u32 {
        sim.add_flow(flow(
            u64::from(i) + 1,
            i,
            i + 4,
            200_000,
            TrafficClass::Lossless,
        ));
    }
    assert!(
        sim.run_until_done(SimTime::from_millis(80)),
        "IRN flows must finish despite the flap (seed {seed})"
    );
    let totals = sim.trace().with(|rec| rec.totals()).expect("trace enabled");
    let r = sim.results();
    assert_eq!(
        totals.irn_nacks,
        r.irn.nacks(),
        "traced NACKs reconcile with counters (seed {seed})"
    );
    assert_eq!(
        totals.irn_retransmits, r.irn.retransmitted_packets,
        "traced retransmissions reconcile with counters (seed {seed})"
    );
    r
}

#[test]
fn link_flap_mid_transfer_every_irn_flow_completes_without_pfc() {
    let r = run_irn_flap(42);
    assert_eq!(r.unfinished_flows, 0);
    assert_eq!(r.fct.len(), 4, "all four lossy-RDMA transfers complete");
    assert_eq!(r.irn.flows, 4);
    assert_eq!(r.pause_frames(), 0, "lossy RDMA must never ask for PFC");
    assert_eq!(r.rdma_stranded, 0, "no DCQCN senders involved or stranded");
    // The flap happens mid-transfer, so recovery machinery must have
    // actually engaged: wire losses, NACKs (or RTOs) and retransmissions.
    assert!(
        r.drops.lossy_rdma_packets > 0,
        "the flap must cost lossy-RDMA packets"
    );
    assert!(
        r.irn.retransmitted_packets > 0,
        "losses must be repaired by retransmission"
    );
    assert!(
        r.irn.nacks() > 0 || r.irn.rto_fires > 0,
        "recovery must be driven by NACKs or RTOs"
    );
}

#[test]
fn irn_flap_digest_is_jobs_invariant() {
    let seeds: Vec<u64> = vec![1, 2, 3, 42];
    let digests =
        |jobs: usize| -> Vec<u64> { par_map(jobs, &seeds, |&s| run_irn_flap(s).digest()) };
    assert_eq!(
        digests(1),
        digests(8),
        "post-recovery IRN digest must not depend on worker count"
    );
}

/// A stuck XOFF against the switch's egress toward the receiver: the
/// PFC storm watchdog must force-resume the queue within its threshold,
/// and no lossless packet may be dropped before it fires.
#[test]
fn stuck_pause_is_bounded_by_the_watchdog() {
    const WATCHDOG: SimDuration = SimDuration::from_micros(500);
    let topo = Topology::single_switch(2, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let sw = topo
        .switches()
        .next()
        .expect("single_switch has one switch");
    let to_receiver = topo
        .links()
        .iter()
        .find(|l| l.a.node == NodeId::new(1) || l.b.node == NodeId::new(1))
        .expect("receiver is attached")
        .end_of(sw)
        .expect("switch end")
        .port;

    let mut faults = FaultSchedule::none();
    let pause_at = SimTime::from_micros(50);
    // Held for 20 ms — far beyond the transfer. Only the watchdog can
    // unblock the queue inside this run.
    faults.pause_stuck(
        sw.index() as u32,
        to_receiver.index() as u16,
        3,
        pause_at,
        SimDuration::from_millis(20),
    );
    let cfg = FabricConfig {
        switch: SwitchConfig {
            pfc_watchdog: Some(WATCHDOG),
            ..SwitchConfig::default()
        },
        sample_interval: None,
        trace: TraceConfig::enabled(),
        faults,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    // ~335 µs of line-rate transfer: still sending when the XOFF lands.
    sim.add_flow(flow(1, 0, 1, 1_000_000, TrafficClass::Lossless));
    assert!(
        sim.run_until_done(SimTime::from_millis(10)),
        "watchdog must unblock the transfer long before the 20 ms release"
    );
    let r = sim.results();
    assert_eq!(r.pfc.watchdog_fires(), 1, "exactly one forced resume");
    assert_eq!(r.drops.lossless_packets, 0, "PFC held the flow lossless");

    let (fired_at, first_lossless_drop, finish) = sim
        .trace()
        .with(|rec| {
            let mut fired = None;
            let mut first_drop = None;
            for record in rec.records() {
                match record.event {
                    TraceEvent::PfcWatchdogFired { .. } if fired.is_none() => {
                        fired = Some(record.at);
                    }
                    TraceEvent::Drop { lossless: true, .. } if first_drop.is_none() => {
                        first_drop = Some(record.at);
                    }
                    _ => {}
                }
            }
            (fired, first_drop, rec.totals().watchdog_fires)
        })
        .expect("trace enabled");
    let fired_at = fired_at.expect("watchdog fired");
    assert_eq!(finish, 1, "trace total agrees with the PFC counter");
    assert!(
        fired_at <= pause_at + WATCHDOG + SimDuration::from_micros(1),
        "watchdog fired at {fired_at}, beyond threshold after the {pause_at} XOFF"
    );
    if let Some(at) = first_lossless_drop {
        assert!(at >= fired_at, "lossless drop at {at} before the watchdog");
    }
}

/// All uplinks of a ToR go down: cross-rack packets reaching it have no
/// route and must be *counted* drops (`DropCause::NoRoute`), not a
/// panic; once the uplinks return, RTO retransmission completes the
/// flow, and trace totals reconcile with the run's drop counters.
#[test]
fn routing_blackout_counts_no_route_drops_and_recovers() {
    let topo = Topology::clos(&ClosConfig::small(4));
    let tor = topo
        .host_uplink_switch(NodeId::new(0))
        .expect("host 0 has a ToR");
    let uplinks = uplinks_of(&topo, tor);
    assert!(uplinks.len() >= 2, "clos ToR has multiple uplinks");
    let mut faults = FaultSchedule::none();
    for l in &uplinks {
        faults.link_flap(
            l.index() as u32,
            SimTime::from_micros(50),
            SimDuration::from_millis(1),
        );
    }
    let cfg = FabricConfig {
        sample_interval: None,
        trace: TraceConfig::enabled(),
        faults,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    sim.add_flow(flow(1, 0, 4, 500_000, TrafficClass::Lossy));
    assert!(
        sim.run_until_done(SimTime::from_millis(80)),
        "flow must recover once the uplinks return"
    );
    let r = sim.results();
    assert_eq!(r.unfinished_flows, 0);
    let totals = sim.trace().with(|rec| rec.totals()).expect("trace enabled");
    assert!(
        totals.drops_no_route > 0,
        "the blackout must surface as counted NoRoute drops"
    );
    assert_eq!(
        totals.drops(),
        r.drops.lossy_packets + r.drops.lossless_packets,
        "every traced drop is in the drop counters and vice versa"
    );
    assert_eq!(totals.defects, 0, "no defensive-path defects");
}

/// An explicitly *empty* fault schedule must reproduce the pre-fault
/// golden digest bit-for-bit: fault support is free when unused.
#[test]
fn zero_fault_schedule_matches_golden_digest() {
    let topo = Topology::clos(&ClosConfig::small(4));
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let (rdma_hosts, tcp_hosts): (Vec<NodeId>, Vec<NodeId>) =
        hosts.iter().partition(|h| h.index() % 2 == 0);
    let mut rng = SimRng::seed_from_u64(42);
    let window = SimDuration::from_millis(2);

    let rdma = PoissonTraffic::builder(rdma_hosts.clone(), web_search_cdf())
        .load(0.4)
        .link_rate(BitRate::from_gbps(25))
        .class(TrafficClass::Lossless, Priority::new(3))
        .dests(rdma_hosts)
        .build();
    let tcp = PoissonTraffic::builder(tcp_hosts.clone(), web_search_cdf())
        .load(0.8)
        .link_rate(BitRate::from_gbps(25))
        .class(TrafficClass::Lossy, Priority::new(1))
        .dests(tcp_hosts)
        .first_flow_id(1 << 40)
        .build();

    let cfg = FabricConfig {
        policy: PolicyChoice::l2bm(),
        seed: 42,
        switch: SwitchConfig {
            total_buffer: Bytes::from_kb(96),
            ..SwitchConfig::default()
        },
        sample_interval: None,
        faults: FaultSchedule::none(),
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    sim.add_flows(rdma.generate(window, &mut rng.fork(1)));
    sim.add_flows(tcp.generate(window, &mut rng.fork(2)));
    sim.run_until_done(SimTime::ZERO + window + SimDuration::from_millis(20));

    let r = sim.results();
    let fct_nanos: u64 = r.fct.records().iter().map(|rec| rec.fct().as_nanos()).sum();
    assert_eq!(
        (
            r.fct.len(),
            fct_nanos,
            r.pause_frames(),
            r.drops.lossless_packets + r.drops.lossy_packets,
            r.events_processed,
            r.unfinished_flows,
        ),
        (17, 24_797_131, 10, 286, 387_544, 0),
        "an empty FaultSchedule must be byte-identical to no fault support"
    );
}

/// A `PauseRelease` that arrives after the watchdog already forced the
/// resume must be a harmless no-op.
#[test]
fn late_release_after_watchdog_is_a_noop() {
    let topo = Topology::single_switch(2, BitRate::from_gbps(25), SimDuration::from_micros(1));
    let sw = topo.switches().next().expect("switch");
    let port = topo
        .links()
        .iter()
        .find(|l| l.a.node == NodeId::new(1) || l.b.node == NodeId::new(1))
        .expect("receiver link")
        .end_of(sw)
        .expect("switch end")
        .port;
    let mut faults = FaultSchedule::none();
    // Watchdog (200 µs) fires first; the scheduled release lands at
    // 2 ms on an already-resumed queue.
    faults.push(
        SimTime::from_micros(50),
        FaultEvent::PauseStuck {
            node: sw.index() as u32,
            port: port.index() as u16,
            prio: 3,
        },
    );
    faults.push(
        SimTime::from_millis(2),
        FaultEvent::PauseRelease {
            node: sw.index() as u32,
            port: port.index() as u16,
            prio: 3,
        },
    );
    let cfg = FabricConfig {
        switch: SwitchConfig {
            pfc_watchdog: Some(SimDuration::from_micros(200)),
            ..SwitchConfig::default()
        },
        sample_interval: None,
        faults,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    sim.add_flow(flow(1, 0, 1, 500_000, TrafficClass::Lossless));
    assert!(sim.run_until_done(SimTime::from_millis(10)));
    let r = sim.results();
    assert_eq!(r.pfc.watchdog_fires(), 1);
    assert_eq!(r.unfinished_flows, 0);
    assert_eq!(r.drops.lossless_packets, 0);
}
