//! Golden-digest regression suite: the eviction hook added for Occamy
//! must be *free* for every other policy — zero extra events, zero
//! extra RNG draws, byte-identical results. These tests pin the exact
//! event counts and `RunResults` digests captured before the hook
//! existed (the same goldens `dcn-bench --bin throughput -- --check`
//! asserts in release CI).
//!
//! The two small-scale scenarios run in the plain tier-1 suite; the
//! paper-scale scenario (~7.5M events) is `#[ignore]`d for debug runs
//! and exercised by the release-mode CI check instead.

use dcn_experiments::{run_hybrid, run_incast, ExperimentScale, HybridConfig, IncastConfig};
use dcn_fabric::PolicyChoice;
use dcn_sim::SimDuration;

#[test]
fn hybrid_small_golden_digest_is_unchanged() {
    let p = run_hybrid(&HybridConfig {
        scale: ExperimentScale::small(),
        policy: PolicyChoice::l2bm(),
        rdma_load: 0.4,
        tcp_load: 0.8,
    });
    assert_eq!(p.results.events_processed, 930_146, "event count drifted");
    assert_eq!(p.results.digest(), 0x972d_5f4e_f9da_3109, "digest drifted");
    assert_eq!(p.results.drops.evicted_packets, 0, "no policy evicts here");
    assert_eq!(p.results.rdma_stranded, 0, "no DCQCN sender may strand");
}

#[test]
fn incast_small_golden_digest_is_unchanged() {
    let p = run_incast(&IncastConfig::paper_defaults(
        ExperimentScale::small(),
        PolicyChoice::l2bm(),
        5,
    ));
    assert_eq!(p.results.events_processed, 857_321, "event count drifted");
    assert_eq!(p.results.digest(), 0xfc40_bd96_0ecc_5a10, "digest drifted");
    assert_eq!(p.results.drops.evicted_packets, 0, "no policy evicts here");
    assert_eq!(p.results.rdma_stranded, 0, "no DCQCN sender may strand");
}

#[test]
#[ignore = "paper scale (~7.5M events); run with --include-ignored in release"]
fn hybrid_paper_golden_digest_is_unchanged() {
    let p = run_hybrid(&HybridConfig {
        scale: ExperimentScale::paper().with_window(SimDuration::from_millis(2)),
        policy: PolicyChoice::l2bm(),
        rdma_load: 0.4,
        tcp_load: 0.8,
    });
    assert_eq!(p.results.events_processed, 7_464_811, "event count drifted");
    assert_eq!(p.results.digest(), 0x07ab_b15b_a35b_844d, "digest drifted");
    assert_eq!(p.results.rdma_stranded, 0, "no DCQCN sender may strand");
}
