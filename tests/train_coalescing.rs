//! Host-NIC packet-train coalescing: trains must change the event
//! *count*, never the simulated *behavior*. Each test runs the same
//! scenario with trains off and on and compares behavior digests (per
//! flow FCTs, PFC, drops, occupancy — everything but the event count)
//! and, where a flight recorder is attached, the full per-packet trace.
//!
//! The scenarios are tie-free by construction (odd fault offsets, a
//! single transmitting host), so the sequence-number permutation that
//! batching introduces cannot flip any same-nanosecond tie-break.

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice, RunResults, TrainConfig};
use dcn_net::{FlowId, NodeId, Priority, Topology, TrafficClass};
use dcn_sim::{BitRate, Bytes, FaultSchedule, SimDuration, SimTime, TraceConfig};
use dcn_workload::FlowSpec;

fn flow(id: u64, src: u32, dst: u32, size: u64, class: TrafficClass, start_ns: u64) -> FlowSpec {
    FlowSpec {
        id: FlowId::new(id),
        src: NodeId::new(src),
        dst: NodeId::new(dst),
        size: Bytes::new(size),
        start: SimTime::from_nanos(start_ns),
        class,
        priority: match class {
            TrafficClass::Lossless | TrafficClass::LossyRdma => Priority::new(3),
            TrafficClass::Lossy => Priority::new(1),
        },
    }
}

/// Two hosts behind one switch; 1 µs links at 25 Gb/s (one packet
/// serializes in ~336 ns, so a 10-segment TCP burst forms a ~3.4 µs
/// train).
fn topo() -> Topology {
    Topology::single_switch(2, BitRate::from_gbps(25), SimDuration::from_micros(1))
}

struct Run {
    results: RunResults,
    trace: String,
}

fn run(trains: bool, faults: FaultSchedule, flows: &[FlowSpec]) -> Run {
    let cfg = FabricConfig {
        policy: PolicyChoice::l2bm(),
        sample_interval: None,
        trace: TraceConfig::enabled(),
        faults,
        train: if trains {
            TrainConfig::enabled()
        } else {
            TrainConfig::default()
        },
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo(), cfg);
    for f in flows {
        sim.add_flow(*f);
    }
    assert!(
        sim.run_until_done(SimTime::from_millis(50)),
        "every flow must finish"
    );
    let trace = sim
        .trace()
        .with(|rec| rec.to_jsonl())
        .expect("trace enabled");
    Run {
        results: sim.results(),
        trace,
    }
}

#[test]
fn trains_are_off_by_default() {
    assert!(!FabricConfig::default().train.enable);
    assert!(!TrainConfig::default().enable);
    assert!(TrainConfig::enabled().enable);
}

/// An uninterrupted burst coalesces into trains, shrinking the event
/// count while leaving every observable byte of behavior alone.
#[test]
fn uncontended_burst_coalesces_without_behavior_change() {
    let flows = [flow(1, 0, 1, 100_000, TrafficClass::Lossy, 0)];
    let off = run(false, FaultSchedule::none(), &flows);
    let on = run(true, FaultSchedule::none(), &flows);

    assert_eq!(off.results.trains.trains, 0, "off means off");
    assert!(on.results.trains.trains > 0, "deep burst must form trains");
    assert!(
        on.results.trains.legs > on.results.trains.trains,
        "trains must batch more than one leg"
    );
    assert!(
        on.results.events_processed < off.results.events_processed,
        "coalescing must shrink the event count ({} vs {})",
        on.results.events_processed,
        off.results.events_processed,
    );
    assert_eq!(
        on.results.behavior_digest(),
        off.results.behavior_digest(),
        "trained behavior must match unbatched behavior"
    );
    assert_eq!(on.trace, off.trace, "per-packet traces must be identical");
}

/// A PFC XOFF of the train's priority lands mid-train: committed legs
/// keep their delivery times, unstarted legs are revoked, and the
/// post-split schedule replays the unbatched run packet for packet.
#[test]
fn mid_train_pause_split_matches_unbatched() {
    // 10-segment initial window bursts at t=0; legs end every ~336 ns.
    // The XOFF lands at 1499 ns — mid-leg-5, off any leg boundary —
    // and releases 20 µs later.
    let mut faults = FaultSchedule::none();
    faults.pause_stuck(
        0, // host 0
        0, // its single NIC port
        1, // the lossy priority carrying the train
        SimTime::from_nanos(1_499),
        SimDuration::from_micros(20),
    );
    let flows = [flow(1, 0, 1, 100_000, TrafficClass::Lossy, 0)];
    let off = run(false, faults.clone(), &flows);
    let on = run(true, faults, &flows);

    assert!(on.results.trains.trains > 0, "the burst must form a train");
    assert!(
        on.results.trains.splits > 0,
        "the XOFF must land mid-train and split it"
    );
    assert_eq!(on.results.drops.lossless_packets, 0);
    assert_eq!(
        on.results.behavior_digest(),
        off.results.behavior_digest(),
        "split must replay the unbatched schedule"
    );
    assert_eq!(on.trace, off.trace, "per-packet traces must be identical");
}

/// A competing-priority packet injected mid-train breaks the sole-
/// priority invariant: the train splits so round-robin can interleave
/// exactly as the unbatched scheduler would have.
#[test]
fn competing_priority_injection_splits_train() {
    let flows = [
        // The lossy burst that forms the train at t=0...
        flow(1, 0, 1, 100_000, TrafficClass::Lossy, 0),
        // ...and a lossless flow from the same host starting mid-train.
        flow(2, 0, 1, 20_000, TrafficClass::Lossless, 1_371),
    ];
    let off = run(false, FaultSchedule::none(), &flows);
    let on = run(true, FaultSchedule::none(), &flows);

    assert!(on.results.trains.trains > 0);
    assert!(
        on.results.trains.splits > 0,
        "the lossless arrival must split the lossy train"
    );
    assert_eq!(on.results.drops.lossless_packets, 0);
    assert_eq!(
        on.results.behavior_digest(),
        off.results.behavior_digest(),
        "round-robin interleaving must match the unbatched run"
    );
    assert_eq!(on.trace, off.trace, "per-packet traces must be identical");
}

/// Wheel timers keep the pending-event population of a long-lived flow
/// bounded: every RTO re-arm cancels its predecessor instead of
/// tombstoning it, so the queue never accumulates dead deadlines and
/// never pops a stale one.
#[test]
fn long_lived_flow_pending_events_stay_bounded() {
    let flows = [flow(1, 0, 1, 5_000_000, TrafficClass::Lossy, 0)];
    let r = run(false, FaultSchedule::none(), &flows).results;
    assert_eq!(r.unfinished_flows, 0);
    assert!(
        r.fct.len() == 1 && r.events_processed > 10_000,
        "the transfer must be long-lived ({} events)",
        r.events_processed
    );
    assert!(
        r.queue.max_pending < 100,
        "pending events must stay bounded for a single flow, got {}",
        r.queue.max_pending
    );
    assert_eq!(r.queue.stale_timer_pops, 0, "no cancelled timer may pop");
    assert_eq!(r.queue.past_clamps, 0, "wheel timers never clamp");
}
