//! Flight-recorder worked example: replay the Fig 7 hybrid scenario
//! (L2BM, TCP load 0.8, small scale) with tracing enabled and explain
//! the slowest TCP flows. Ignored by default — it is a diagnostic
//! harness, not an assertion suite:
//!
//! ```text
//! cargo test --release --test diag_fig7 -- --ignored --nocapture
//! ```
//!
//! This is the run that pinned down the two residual tail causes after
//! the NewReno fixes: (a) the p99 flow is usually a tiny flow with a
//! *clean* trace whose slowdown is source-host NIC backlog, which no
//! buffer policy can see, and (b) the remaining RTOs are caused by the
//! receiver's 60 B dup-ACK bursts being dropped at a congested ingress,
//! so the sender never collects three duplicate ACKs.

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice};
use dcn_net::{ClosConfig, NodeId, Priority, Topology, TrafficClass};
use dcn_sim::{Bytes, SimDuration, SimRng, SimTime, TraceConfig};
use dcn_switch::SwitchConfig;
use dcn_workload::{web_search_cdf, PoissonTraffic};

#[test]
#[ignore = "diagnostic harness: run with --ignored --nocapture to read the report"]
fn explain_fig7_l2bm_load08_tail() {
    // Mirrors ExperimentScale::small() + run_hybrid with tcp_load 0.8.
    let clos = ClosConfig::small(8);
    let topo = Topology::clos(&clos);
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let (rdma_hosts, tcp_hosts): (Vec<NodeId>, Vec<NodeId>) =
        hosts.iter().partition(|h| h.index() % 8 < 4);
    let mut rng = SimRng::seed_from_u64(42);
    let window = SimDuration::from_millis(5);

    let rdma = PoissonTraffic::builder(rdma_hosts.clone(), web_search_cdf())
        .load(0.4)
        .link_rate(clos.host_rate)
        .class(TrafficClass::Lossless, Priority::new(3))
        .dests(rdma_hosts)
        .build();
    let tcp = PoissonTraffic::builder(tcp_hosts.clone(), web_search_cdf())
        .load(0.8)
        .link_rate(clos.host_rate)
        .class(TrafficClass::Lossy, Priority::new(1))
        .dests(tcp_hosts)
        .first_flow_id(1 << 40)
        .build();

    let cfg = FabricConfig {
        policy: PolicyChoice::l2bm(),
        seed: 42,
        switch: SwitchConfig {
            total_buffer: Bytes::from_kb(500),
            ..SwitchConfig::default()
        },
        sample_interval: None,
        trace: TraceConfig {
            capacity: 1 << 22,
            ..TraceConfig::enabled()
        },
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    sim.add_flows(rdma.generate(window, &mut rng.fork(1)));
    sim.add_flows(tcp.generate(window, &mut rng.fork(2)));
    sim.run_until_done(SimTime::ZERO + window + SimDuration::from_millis(200));

    let results = sim.results();
    let mut tcp_recs: Vec<_> = results
        .fct
        .records()
        .iter()
        .filter(|r| r.class == TrafficClass::Lossy)
        .collect();
    tcp_recs.sort_by(|a, b| b.slowdown().total_cmp(&a.slowdown()));
    println!("{} TCP flows completed; slowest first:", tcp_recs.len());
    for r in tcp_recs.iter().take(8) {
        println!(
            "  flow {} slowdown {:.1} fct {} ns",
            r.flow,
            r.slowdown(),
            r.fct().as_nanos()
        );
    }
    sim.trace()
        .with(|rec| {
            for r in tcp_recs.iter().take(5) {
                print!("{}", rec.summarize_flow(r.flow.as_u64()));
            }
            println!(
                "totals: {:?} ({} events recorded, {} evicted)",
                rec.totals(),
                rec.len(),
                rec.evicted()
            );
        })
        .expect("recorder enabled");
}
