//! Determinism-under-parallelism regression: the sweep engine must
//! produce bit-identical results at any `--jobs` value. A fixed Fig. 7
//! cell grid is run serially and on 8 worker threads; every per-cell
//! [`RunResults`] digest and the rendered report must match exactly.
//!
//! The same check runs in CI via `dcn-bench --bin trace -- --check` and
//! `dcn-bench --bin sweep -- --check`; this test keeps it in the
//! plain `cargo test` tier-1 suite.

use dcn_experiments::{fig7_with, table2_with, tournament, ExperimentScale, SweepOptions};

fn fig7_digests(jobs: usize, seeds: u64) -> (Vec<u64>, String) {
    let report = fig7_with(
        &ExperimentScale::tiny(),
        &[0.4],
        &SweepOptions::new(jobs, seeds),
    );
    let digests = report.points.iter().map(|p| p.results.digest()).collect();
    (digests, report.render())
}

#[test]
fn fig7_cell_digests_match_between_jobs_1_and_8() {
    let (serial, serial_render) = fig7_digests(1, 1);
    let (parallel, parallel_render) = fig7_digests(8, 1);
    assert_eq!(serial.len(), 4, "one cell per policy");
    assert_eq!(
        serial, parallel,
        "RunResults digests must not depend on the thread count"
    );
    assert_eq!(
        serial_render, parallel_render,
        "rendered report must be byte-identical across --jobs values"
    );
}

#[test]
fn multi_seed_aggregation_is_thread_count_invariant() {
    let (serial, serial_render) = fig7_digests(1, 3);
    let (parallel, parallel_render) = fig7_digests(8, 3);
    // The base replicate's full results survive aggregation unchanged…
    assert_eq!(serial, parallel);
    // …and the mean ± CI columns (computed across seeds) agree too.
    assert_eq!(serial_render, parallel_render);
    assert!(
        serial_render.contains('±'),
        "multi-seed report must carry CI columns"
    );
}

#[test]
fn table2_render_is_thread_count_invariant() {
    let opts_1 = SweepOptions::new(1, 2);
    let opts_8 = SweepOptions::new(8, 2);
    let loads = [0.4];
    let a = table2_with(&ExperimentScale::tiny(), &loads, &opts_1).render();
    let b = table2_with(&ExperimentScale::tiny(), &loads, &opts_8).render();
    assert_eq!(a, b);
}

#[test]
fn tournament_is_thread_count_invariant() {
    // The six-policy tournament mixes three cell kinds (hybrid, incast,
    // chaos) in one harness; every underlying run digest and the
    // rendered Pareto table must be byte-identical at jobs 1 vs 8, and
    // the invariant battery must pass on both.
    let scale = ExperimentScale::tiny();
    let serial = tournament(&scale, 1, 1);
    let parallel = tournament(&scale, 1, 8);
    assert_eq!(serial.digests(), parallel.digests());
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.violations(), Vec::<String>::new());
    assert_eq!(parallel.violations(), Vec::<String>::new());
}
