//! The burst deep dive (paper §IV-B): RDMA incast queries against heavy
//! TCP background traffic. Prints per-policy query-latency error bars —
//! the paper's Fig. 10(b).
//!
//! ```text
//! cargo run --release --example incast_burst
//! ```

use dcn_experiments::{fmt_f64, paper_policies, run_incast, ExperimentScale, IncastConfig, Table};

fn main() {
    let scale = ExperimentScale::small();
    let fanout = 5;
    println!(
        "incast deep dive: x = 25% of buffer striped over N = {fanout} servers, \
         TCP background load 0.8, {} hosts\n",
        scale.host_count()
    );

    let mut table = Table::new(&[
        "policy",
        "queries",
        "mean delay (ms)",
        "median (ms)",
        "max (ms)",
        "p99 slowdown",
        "pause frames",
    ]);
    for policy in paper_policies() {
        let point = run_incast(&IncastConfig::paper_defaults(scale.clone(), policy, fanout));
        let eb = point.query_delay.expect("queries completed");
        table.row(vec![
            point.label.clone(),
            format!("{}/{}", point.completed_queries, point.queries),
            fmt_f64(eb.mean * 1e3),
            fmt_f64(eb.median * 1e3),
            fmt_f64(eb.max * 1e3),
            fmt_f64(point.incast_p99_slowdown),
            point.pause_frames.to_string(),
        ]);
    }
    println!("{}", table.render());
}
