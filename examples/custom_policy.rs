//! Extending the switch with your own buffer-management policy.
//!
//! Implements a naive *static threshold* policy (every ingress queue may
//! hold a fixed share of the buffer, no dynamics at all) and races it
//! against L2BM on the same incast, showing how the `BufferPolicy` trait
//! plugs into `SharedMemorySwitch` directly — without the fabric layer.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use dcn_net::{FlowId, NodeId, Packet, PortId, Priority, TrafficClass};
use dcn_sim::{BitRate, Bytes, SimDuration, SimTime};
use dcn_switch::{BufferPolicy, MmuState, QueueIndex, SharedMemorySwitch, SwitchConfig};
use l2bm::L2bmPolicy;

/// A fixed per-queue cap: `buffer / 16`, the static partitioning L2BM's
/// lineage (dynamic thresholds) replaced decades ago.
#[derive(Debug)]
struct StaticThreshold;

impl BufferPolicy for StaticThreshold {
    fn name(&self) -> &str {
        "STATIC"
    }

    fn pfc_threshold(&self, mmu: &MmuState, _q: QueueIndex, _now: SimTime) -> Bytes {
        mmu.shared_capacity() / 16
    }
}

/// Drives a burst of `n` back-to-back lossless packets from 4 ingress
/// ports into one egress port and reports pause frames + peak occupancy.
fn drive(policy: Box<dyn BufferPolicy>, n: u64) -> (String, u64, Bytes) {
    let name = policy.name().to_string();
    let mut sw = SharedMemorySwitch::new(
        NodeId::new(0),
        SwitchConfig {
            total_buffer: Bytes::from_kb(256),
            ..SwitchConfig::default()
        },
        vec![BitRate::from_gbps(25); 5],
        policy,
        7,
    );
    let mut t = SimTime::ZERO;
    let mut peak = Bytes::ZERO;
    let mut in_flight = false;
    for i in 0..n {
        let pkt = Packet::data(
            FlowId::new(i % 4),
            NodeId::new(100 + (i % 4) as u32),
            NodeId::new(200),
            Priority::new(3),
            TrafficClass::Lossless,
            i * 1_000,
            Bytes::new(1_000),
            Bytes::new(48),
        );
        let r = sw.receive(t, pkt, PortId::new((i % 4) as u16), PortId::new(4));
        in_flight |= r.tx.is_some();
        peak = peak.max(sw.occupancy());
        // Arrivals at 4× the drain rate: one departure per 4 arrivals.
        if i % 4 == 3 && in_flight {
            t += SimDuration::from_nanos(336);
            in_flight = sw.tx_complete(t, PortId::new(4)).next.is_some();
        } else {
            t += SimDuration::from_nanos(84);
        }
    }
    (name, sw.pfc_counters().pause_frames(), peak)
}

fn main() {
    println!("4-into-1 burst of 2000 packets through a 256 KB switch\n");
    println!("policy  pause_frames  peak_occupancy");
    println!("-------------------------------------");
    for (name, pauses, peak) in [
        drive(Box::new(StaticThreshold), 2_000),
        drive(Box::<L2bmPolicy>::default(), 2_000),
    ] {
        println!("{name:<7} {pauses:<13} {peak}");
    }
    println!();
    println!(
        "Both policies eventually pause the four senders, but STATIC cuts\n\
         the burst off with most of the buffer still free, while L2BM sees\n\
         the queues draining and absorbs roughly twice as many bytes\n\
         before resorting to PFC."
    );
}
