//! Quickstart: simulate a 5-into-1 RDMA incast through one L2BM switch
//! and print per-flow completion times plus switch counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice};
use dcn_net::{FlowId, NodeId, Priority, Topology, TrafficClass};
use dcn_sim::{BitRate, Bytes, SimDuration, SimTime};
use dcn_workload::FlowSpec;

fn main() {
    // One switch, five senders, one receiver, 25 Gbps links.
    let topo = Topology::single_switch(6, BitRate::from_gbps(25), SimDuration::from_micros(1));

    let cfg = FabricConfig {
        policy: PolicyChoice::l2bm(),
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);

    // Five simultaneous 200 KB lossless responses to host 5 — a classic
    // fan-in burst.
    for i in 0..5u64 {
        sim.add_flow(FlowSpec {
            id: FlowId::new(i),
            src: NodeId::new(i as u32),
            dst: NodeId::new(5),
            size: Bytes::new(200_000),
            start: SimTime::ZERO,
            class: TrafficClass::Lossless,
            priority: Priority::new(3),
        });
    }

    let all_done = sim.run_until_done(SimTime::from_millis(100));
    let results = sim.results();

    println!("all flows completed: {all_done}");
    println!("flow  size     fct        slowdown");
    println!("-----------------------------------");
    for r in results.fct.records() {
        println!(
            "{:<5} {:<8} {:<10} {:.2}",
            r.flow,
            r.size.to_string(),
            r.fct().to_string(),
            r.slowdown()
        );
    }
    println!();
    println!("PFC pause frames : {}", results.pause_frames());
    println!("lossless drops   : {}", results.drops.lossless_packets);
    println!("lossy drops      : {}", results.drops.lossy_packets);
    println!("events processed : {}", results.events_processed);
}
