//! The paper's headline scenario: RDMA and TCP share a clos fabric's
//! switch buffers, and the buffer-management policy decides whether TCP
//! starves the lossless class.
//!
//! Runs the same hybrid web-search workload (RDMA at load 0.4, TCP at
//! load 0.8) under all four policies and prints the Fig. 7-style
//! comparison.
//!
//! ```text
//! cargo run --release --example hybrid_isolation
//! ```

use dcn_experiments::{fmt_bytes, fmt_f64, paper_policies, ExperimentScale, HybridConfig, Table};

fn main() {
    let scale = ExperimentScale::small();
    println!(
        "hybrid web search on a {}-host clos ({} window, seed {})\n",
        scale.host_count(),
        scale.window,
        scale.seed
    );

    let mut table = Table::new(&[
        "policy",
        "rdma p99 slowdown",
        "tcp p99 slowdown",
        "occupancy p99",
        "pause frames",
        "lossy drops",
    ]);
    for policy in paper_policies() {
        let point = dcn_experiments::run_hybrid(&HybridConfig {
            scale: scale.clone(),
            policy,
            rdma_load: 0.4,
            tcp_load: 0.8,
        });
        assert_eq!(point.lossless_drops, 0, "lossless traffic must never drop");
        table.row(vec![
            point.label.clone(),
            fmt_f64(point.rdma_p99_slowdown),
            fmt_f64(point.tcp_p99_slowdown),
            fmt_bytes(point.tor_occupancy_p99),
            point.pause_frames.to_string(),
            point.lossy_drops.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(run `repro fig7 --scale paper` for the full-size sweep)");
}
